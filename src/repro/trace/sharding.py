"""Time-window sharding of columnar traces.

A shard is an ordinary :class:`~repro.trace.Trace` over a contiguous
snapshot range of its parent; because the columnar layout is CSR-flat
and shards share the parent's :class:`~repro.trace.UserInterner`, a
shard split is a handful of array slices and concatenation is a
handful of array concatenations — no re-parsing, no re-interning.

This is the substrate :class:`~repro.core.sharded.ShardedAnalyzer`
fans work over; the split/concat pair round-trips exactly::

    concat_shards(split_time_shards(trace, k)).columns  ==  trace.columns
"""

from __future__ import annotations

import gzip
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.trace.columnar import ColumnarStore, UserInterner, empty_store
from repro.trace.storage import (
    MAGIC,
    VERSION,
    StoreChangedError,
    TraceFormatError,
    _align,
    _is_gzip,
    _METADATA_FIELDS,
    _PREAMBLE,
    _SECTION_DTYPES,
    _tempfile_for,
    read_rtrc_header,
    read_store_rtrc,
    read_trace_rtrc,
    write_store_rtrc,
    write_trace_rtrc,
)
from repro.trace.trace import Trace, TraceMetadata

#: Name of the shard-directory manifest written by :func:`to_rtrc_dir`.
MANIFEST_NAME = "manifest.json"


def shard_edges(snapshot_count: int, k: int) -> np.ndarray:
    """Snapshot boundaries of an even ``k``-way split — ``(k + 1,)`` int64.

    Shard ``i`` covers snapshots ``edges[i]:edges[i + 1]``; the first
    ``S % k`` shards get one extra snapshot (the same partition
    ``np.array_split`` produces), and with ``k`` larger than the
    snapshot count the tail shards are empty.
    """
    if k < 1:
        raise ValueError(f"shard count must be >= 1, got {k}")
    sizes = np.full(k, snapshot_count // k, dtype=np.int64)
    sizes[: snapshot_count % k] += 1
    edges = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(sizes, out=edges[1:])
    return edges


def split_time_shards(trace: Trace, k: int) -> list[Trace]:
    """Partition a trace into ``k`` contiguous time-window shards.

    Snapshots are split as evenly as possible (the first ``S % k``
    shards get one extra snapshot); with ``k`` larger than the
    snapshot count the tail shards are empty.  All shards share the
    parent's metadata and interner, so interned ids stay comparable
    across shards and :func:`concat_shards` restores the parent
    exactly.  Shards are zero-copy slice views
    (:meth:`~repro.trace.columnar.ColumnarStore.slice_snapshots`), so
    splitting a memmap-backed trace touches no data pages.
    """
    edges = shard_edges(trace.columns.snapshot_count, k)
    return [
        Trace.from_columns(
            trace.columns.slice_snapshots(int(lo), int(hi)), trace.metadata
        )
        for lo, hi in zip(edges[:-1], edges[1:])
    ]


def to_rtrc_dir(
    trace: Trace,
    k: int,
    directory: str | Path,
    gzip_shards: bool = False,
) -> list[Path]:
    """Materialize ``k`` per-shard ``.rtrc`` files under ``directory``.

    This is the on-disk counterpart of :func:`split_time_shards`: each
    shard (empty tail shards included) becomes its own memmappable
    file, so parallel workers — process pools, other machines — can
    load exactly their slice with zero parsing and no shared state.
    Every shard file carries the parent's full interner, so interned
    ids stay comparable across shard files.

    A ``manifest.json`` records the shard order, per-shard snapshot
    counts and time ranges; :func:`read_rtrc_dir` uses it to restore
    the shards in order, and ``concat_shards(read_rtrc_dir(d))``
    round-trips the original trace bit-for-bit.  The directory layout
    and manifest schema are specified in ``docs/file-format.md``.

    Parameters
    ----------
    trace:
        The trace to split; ``directory`` is created if needed.
    k:
        Number of contiguous time shards (the first ``S % k`` get one
        extra snapshot; ``k`` beyond the snapshot count yields empty
        tail shards, which are still written so the manifest keeps
        the requested shard count).
    gzip_shards:
        Write ``.rtrc.gz`` shards — smaller on disk but loaded in
        memory instead of memmapped; prefer plain shards for worker
        fan-out.

    Returns the shard file paths, in time order.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    shards = split_time_shards(trace, k)
    suffix = ".rtrc.gz" if gzip_shards else ".rtrc"
    paths: list[Path] = []
    for index, shard in enumerate(shards):
        paths.append(write_trace_rtrc(shard, target / f"shard-{index:05d}{suffix}"))
    write_shard_manifest(
        target,
        [p.name for p in paths],
        [len(s) for s in shards],
        [[s.start_time, s.end_time] if len(s) else None for s in shards],
    )
    return paths


def _fsync_path(path: Path) -> None:
    """Flush one file's (or directory's) data and metadata to disk."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_shard_manifest(
    directory: Path,
    files: Sequence[str],
    snapshot_counts: Sequence[int],
    time_ranges: Sequence[list[float] | None],
    generation: int = 0,
    fsync: bool = False,
) -> Path:
    """Atomically (re)write a shard directory's ``manifest.json``.

    The write goes through a sibling temp file plus rename, so a
    reader never parses a half-written manifest and a crash leaves
    the previous manifest intact — the manifest swap is the commit
    point for both append rounds (:class:`RtrcDirAppender`) and
    compaction (:func:`compact_shard_dir`).  ``generation`` (omitted
    while zero) counts compactions; compacted shard files carry it in
    their names so a compaction never overwrites a file an old
    manifest still references.
    """
    manifest = {
        "format": "rtrc-shard-dir",
        "version": 1,
        "shards": len(files),
        "files": list(files),
        "snapshot_counts": list(snapshot_counts),
        "time_ranges": list(time_ranges),
    }
    if generation:
        manifest["generation"] = generation
    target = directory / MANIFEST_NAME
    payload = json.dumps(manifest, indent=2) + "\n"
    fd, tmp_name = _tempfile_for(target)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        if fsync:
            _fsync_path(directory)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def read_shard_manifest(directory: str | Path) -> dict | None:
    """Parse a shard directory's manifest, or ``None`` when absent.

    Unreadable manifests (bad JSON, missing keys) raise
    :class:`~repro.trace.TraceFormatError` — a directory that claims
    to be a shard dir but cannot say what it holds is corrupt, not
    foreign.
    """
    manifest_path = Path(directory) / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        files = manifest["files"]
        if not isinstance(files, list):
            raise TypeError(f"'files' is {type(files).__name__}, not a list")
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise TraceFormatError(
            f"{manifest_path}: unreadable shard manifest ({exc})"
        ) from exc
    return manifest


def shard_dir_generation(directory: str | Path) -> tuple[int, int]:
    """``(compaction generation, committed file count)`` of a shard dir.

    Every commit grows the file count and every compaction bumps the
    generation (resetting the count), so the pair changes on *exactly*
    the events that can change query results over the directory — a
    ready-made cache-invalidation token.  The query service renders it
    as the HTTP ETag of its cached answers.  A manifest-less (foreign)
    directory reports generation 0 over the globbed file list.
    """
    manifest = read_shard_manifest(directory)
    if manifest is None:
        return (0, len(list_rtrc_dir(directory)))
    return (int(manifest.get("generation", 0)), len(manifest["files"]))


def list_rtrc_dir(directory: str | Path) -> list[str]:
    """Shard file names of a directory, in load order.

    The manifest fixes the order (and may legitimately be empty — a
    streaming shard dir whose first round has not committed yet);
    without one (foreign directories) the ``shard-*`` files are taken
    in name order.  An empty list means "no shards yet", not an error
    — callers that need at least one shard check themselves.
    """
    source = Path(directory)
    manifest = read_shard_manifest(source)
    if manifest is not None:
        return [str(name) for name in manifest["files"]]
    return sorted(
        p.name for p in source.glob("shard-*.rtrc*") if not p.name.endswith(".tmp")
    )


def read_rtrc_dir(directory: str | Path, mmap: bool = True) -> list[Trace]:
    """Load the shard traces written by :func:`to_rtrc_dir`, in order.

    The manifest fixes the order; without one (foreign directories) the
    ``shard-*`` files are taken in name order.  When every shard file
    carries the same user table — always true for :func:`to_rtrc_dir`
    output — the loaded stores are re-pointed at one shared interner,
    so downstream code (``concat_shards``, the sharded analyzer
    merges) sees ids exactly as if the shards had been split in
    memory.

    With ``mmap`` (the default) each shard is a lazy memory-mapped
    view — opening a directory of huge shards costs one header parse
    per file; pass ``False`` to load copies.  Unreadable manifests and
    shard files named by a manifest but missing on disk raise
    :class:`~repro.trace.TraceFormatError`.
    """
    source = Path(directory)
    files = list_rtrc_dir(source)
    if not files:
        raise TraceFormatError(f"{source}: no shard files found")
    shards = []
    for name in files:
        try:
            shards.append(read_trace_rtrc(source / name, mmap=mmap))
        except FileNotFoundError as exc:
            raise TraceFormatError(
                f"{source}: manifest names missing shard file {name!r}"
            ) from exc
    # Re-share one interner object across shards whose name tables
    # agree (ColumnarStore treats `users` as an immutable table, so
    # swapping in an equal one is safe and makes ids pass through
    # concat_stores untouched).
    first = shards[0].columns.users
    for shard in shards[1:]:
        if shard.columns.users.names == first.names:
            shard.columns.users = first
    return shards


def concat_stores(
    stores: Sequence[ColumnarStore],
    users: UserInterner | None = None,
) -> ColumnarStore:
    """Concatenate time-ordered stores into one store.

    Snapshot times must be strictly increasing across the
    concatenation (shards out of order are rejected by the store's own
    validation).  When every input shares one interner object the ids
    pass through untouched; otherwise names are re-interned into a
    merged table and the id columns are remapped through it.
    """
    inputs = list(stores)
    stores = [s for s in inputs if s.snapshot_count]
    if not stores:
        if users is None:
            users = inputs[0].users if inputs else None
        return empty_store(users)
    shared = users is None and all(s.users is stores[0].users for s in stores)
    # NB: an empty interner is falsy (it defines __len__), so the
    # caller-supplied table must be tested against None explicitly.
    target = (
        stores[0].users
        if shared
        else (users if users is not None else UserInterner())
    )
    times = np.concatenate([s.times for s in stores])
    counts = np.concatenate([np.diff(s.snapshot_offsets) for s in stores])
    offsets = np.zeros(len(times) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if shared:
        user_ids = np.concatenate([s.user_ids for s in stores])
    else:
        remapped = []
        for s in stores:
            mapping = np.fromiter(
                (target.intern(name) for name in s.users.names),
                dtype=np.int64,
                count=len(s.users),
            )
            remapped.append(mapping[s.user_ids] if len(s.user_ids) else s.user_ids)
        user_ids = np.concatenate(remapped)
    xyz = np.concatenate([s.xyz for s in stores])
    return ColumnarStore(times, offsets, user_ids, xyz, target)


def concat_shards(shards: Sequence[Trace]) -> Trace:
    """Concatenate time-ordered shard traces back into one trace.

    Metadata is taken from the first shard; shard times must be
    strictly increasing across the sequence.
    """
    if not shards:
        raise ValueError("cannot concatenate zero shards")
    store = concat_stores([shard.columns for shard in shards])
    return Trace.from_columns(store, shards[0].metadata)


# -- appendable shard directories -------------------------------------------


class RtrcDirAppender:
    """Stream a crawl into a shard *directory*: one file per round.

    The single-file :class:`~repro.trace.RtrcAppender` grows one store
    in place; this is its fan-out-friendly sibling — every committed
    append round becomes a brand-new immutable ``shard-*.rtrc`` file
    plus an atomic ``manifest.json`` swap.  Because committed rounds
    never change, a long-running crawl is analyzable *in parallel
    while it grows*: process workers memmap-load the round files
    directly (:class:`~repro.core.live.LiveAnalyzer` with
    ``backend="process"`` reuses them as its part files — nothing is
    re-materialized), and readers racing an append only ever see fully
    written files through the previous or the next manifest.

    Parameters
    ----------
    directory:
        The shard directory to create or extend.  An existing
        directory written by :func:`to_rtrc_dir`, a previous appender,
        or :func:`compact_shard_dir` is resumed: the cumulative user
        table is rebuilt from the committed files (each file's table
        is a prefix of the next, so interned ids stay comparable
        across every file, old and new), and shard files present on
        disk but absent from the manifest — the debris of a crash
        between the file write and the manifest swap — are deleted
        (``recovered_files``).
    metadata:
        Trace metadata stamped onto every round file this appender
        writes.  Defaults to the newest committed file's metadata for
        an existing directory and to the
        :class:`~repro.trace.TraceMetadata` defaults otherwise; the
        :attr:`metadata` property is assignable any time (monitors
        learn the land only on attach).
    fsync:
        When True every commit fsyncs the round file and the
        directory before, and the manifest after, the swap — making
        the commit durable against power loss, not just process
        crash (the same knob :class:`~repro.trace.RtrcAppender`
        offers).  Off by default: the crawl loop favours throughput,
        and a torn commit is recovered on reopen either way.
    policy:
        Optional :class:`CompactionPolicy`.  When set, every commit is
        followed by :meth:`maybe_compact`: retention, streaming
        compaction and tiering run as their thresholds come due, and
        the appender re-adopts each swapped manifest so the crawl just
        keeps going — followers see the generation bump and re-open.

    Usage mirrors :class:`~repro.trace.RtrcAppender` — it is a drop-in
    monitor sink::

        with RtrcDirAppender("crawl-shards/", metadata=meta) as out:
            for t, names, coords in observations:
                out.append_snapshot(t, names, coords)
                ...
                out.commit()   # this round becomes shard-0000N.rtrc

    Pending (uncommitted) snapshots live in memory and are lost on a
    crash — the manifest swap in :meth:`commit` is the durability
    point, and it publishes whole rounds only, so a reader can never
    observe a torn round.
    """

    def __init__(
        self,
        directory: str | Path,
        metadata: TraceMetadata | None = None,
        *,
        fsync: bool = False,
        policy: "CompactionPolicy | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        #: Lifecycle policy run after every commit (assignable; None = manual).
        self.policy = policy
        self._users = UserInterner()
        self._metadata = metadata if metadata is not None else TraceMetadata()
        self._files: list[str] = []
        self._counts: list[int] = []
        self._ranges: list[list[float] | None] = []
        self._generation = 0
        self._committed_s = 0
        self._committed_n = 0
        self._last_time = float("-inf")
        self._closed = False
        #: Orphaned shard files deleted while opening (crash debris).
        self.recovered_files: list[str] = []
        # The pending round, in memory until commit.
        self._pending_times: list[float] = []
        self._pending_ids: list[np.ndarray] = []
        self._pending_xyz: list[np.ndarray] = []
        self._pending_rows = 0
        self._adopt_existing(metadata)
        # Round files are named past the highest index on disk, not by
        # file count: after retention drops a prefix the count shrinks
        # while the high indices survive, and a count-based name would
        # silently overwrite a committed round.
        self._next_index = (
            max((_shard_index(name) for name in self._files), default=-1) + 1
        )
        if read_shard_manifest(self.directory) is None:
            # A fresh directory becomes self-describing immediately:
            # an empty manifest distinguishes "no rounds committed
            # yet" from "not a shard directory".
            self._write_manifest()

    # -- construction -------------------------------------------------------

    def _adopt_existing(self, metadata: TraceMetadata | None) -> None:
        manifest = read_shard_manifest(self.directory)
        if manifest is not None:
            files = [str(name) for name in manifest["files"]]
            self._generation = int(manifest.get("generation", 0))
        else:
            files = list_rtrc_dir(self.directory)
        for name in files:
            path = self.directory / name
            try:
                store, file_meta = read_store_rtrc(path, mmap=True)
            except FileNotFoundError as exc:
                raise TraceFormatError(
                    f"{self.directory}: manifest names missing shard file "
                    f"{name!r}"
                ) from exc
            for user in store.users.names:
                self._users.intern(user)
            count = store.snapshot_count
            self._files.append(name)
            self._counts.append(count)
            if count:
                first = float(store.times[0])
                last = float(store.times[-1])
                if last <= self._last_time or first <= self._last_time:
                    raise TraceFormatError(
                        f"{self.directory}: shard file {name!r} is not "
                        "strictly after its predecessors; the directory is "
                        "not a time-ordered shard dir"
                    )
                self._ranges.append([first, last])
                self._last_time = last
                self._committed_s += count
                self._committed_n += store.observation_count
            else:
                self._ranges.append(None)
            if metadata is None:
                self._metadata = file_meta
        if manifest is not None:
            known = set(files)
            for path in sorted(self.directory.glob("shard-*.rtrc*")):
                if path.name not in known and not path.name.endswith(".tmp"):
                    path.unlink()
                    self.recovered_files.append(path.name)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Commit the pending round (if any); idempotent."""
        if self._closed:
            return
        try:
            self.commit()
        finally:
            self._closed = True

    def __enter__(self) -> "RtrcDirAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self.directory}: appender is closed")

    # -- shape ---------------------------------------------------------------

    @property
    def snapshot_count(self) -> int:
        """Snapshots written so far (committed and pending)."""
        return self._committed_s + len(self._pending_times)

    @property
    def observation_count(self) -> int:
        """Observation rows written so far (committed and pending)."""
        return self._committed_n + self._pending_rows

    @property
    def committed_snapshot_count(self) -> int:
        """Snapshots a concurrent reader is guaranteed to see."""
        return self._committed_s

    @property
    def shard_count(self) -> int:
        """Committed round files so far."""
        return len(self._files)

    @property
    def shard_files(self) -> list[str]:
        """Committed round file names, in time order."""
        return list(self._files)

    @property
    def user_count(self) -> int:
        """Distinct users interned so far."""
        return len(self._users)

    @property
    def user_names(self) -> list[str]:
        """Interned user names, indexed by id.  Treat as read-only."""
        return self._users.names

    @property
    def last_time(self) -> float:
        """Timestamp of the newest appended snapshot (-inf when empty)."""
        return self._last_time if not self._pending_times else self._pending_times[-1]

    @property
    def metadata(self) -> TraceMetadata:
        """Trace metadata stamped on round files (assignable)."""
        return self._metadata

    @metadata.setter
    def metadata(self, value: TraceMetadata) -> None:
        self._metadata = value

    # -- appends -------------------------------------------------------------

    def append_snapshot(
        self,
        time: float,
        names: Sequence[str],
        coords: np.ndarray | Sequence[Sequence[float]],
    ) -> None:
        """Buffer one snapshot into the pending round.

        ``time`` must be strictly greater than every earlier snapshot
        in the directory; ``names`` may repeat users across snapshots
        but not within one.  Nothing touches disk until :meth:`commit`.
        """
        self._require_open()
        t = float(time)
        if t <= self.last_time:
            raise ValueError(
                f"snapshot times must be strictly increasing: "
                f"{t} after {self.last_time}"
            )
        rows = len(names)
        block = np.ascontiguousarray(coords, dtype=np.float64).reshape(rows, 3)
        if len(set(names)) != rows:
            seen: set[str] = set()
            for name in names:
                if name in seen:
                    raise ValueError(f"user {name!r} appears twice at t={t}")
                seen.add(name)
        ids = np.fromiter(
            (self._users.intern(name) for name in names),
            dtype=np.int64,
            count=rows,
        )
        self._pending_times.append(t)
        self._pending_ids.append(ids)
        self._pending_xyz.append(block)
        self._pending_rows += rows

    def commit(self) -> Path | None:
        """Publish the pending round as a new shard file.

        The round's snapshots are written as one immutable
        ``shard-*.rtrc`` file (via the usual temp-file + rename), then
        the manifest is atomically swapped to include it — the commit
        point.  A crash in between leaves an orphan file the next
        appender deletes and a manifest that never mentions it, so
        concurrent readers always load a consistent committed prefix.
        Returns the new shard file's path, or ``None`` when nothing
        was pending.

        Raises :class:`~repro.trace.StoreChangedError` when the
        directory's manifest no longer matches the state this appender
        opened with — the signature of a concurrent
        :func:`compact_shard_dir` (generation bump, rewritten file
        list).  Writing this appender's stale manifest would silently
        resurrect the pre-compaction file list (whose files are
        already unlinked) and lose every post-compaction round, so the
        commit refuses instead; re-open the appender over the
        compacted directory to resume.
        """
        self._require_open()
        if not self._pending_times:
            return None
        self._check_not_superseded()
        count = len(self._pending_times)
        times = np.asarray(self._pending_times, dtype=np.float64)
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum([len(ids) for ids in self._pending_ids], out=offsets[1:])
        user_ids = (
            np.concatenate(self._pending_ids)
            if self._pending_rows
            else np.empty(0, dtype=np.int64)
        )
        xyz = (
            np.concatenate(self._pending_xyz)
            if self._pending_rows
            else np.empty((0, 3), dtype=np.float64)
        )
        store = ColumnarStore(times, offsets, user_ids, xyz, self._users)
        name = f"shard-{self._next_index:05d}.rtrc"
        path = write_store_rtrc(store, self._metadata, self.directory / name)
        if self._fsync:
            # The round file's blocks (same inode across the rename)
            # and its directory entry must be durable before the
            # manifest names it, or a power loss could publish a
            # file whose data never reached disk.
            _fsync_path(path)
            _fsync_path(self.directory)
        try:
            # Re-checked after the (slow) round-file write so a
            # compaction landing mid-commit is still caught before the
            # manifest swap publishes stale state; the fresh round
            # file is unlinked rather than left as crash debris.
            self._check_not_superseded()
        except StoreChangedError:
            try:
                path.unlink()
            except OSError:
                pass
            raise
        self._files.append(name)
        self._counts.append(count)
        self._ranges.append([float(times[0]), float(times[-1])])
        self._committed_s += count
        self._committed_n += self._pending_rows
        self._last_time = float(times[-1])
        self._next_index += 1
        self._pending_times = []
        self._pending_ids = []
        self._pending_xyz = []
        self._pending_rows = 0
        self._write_manifest()
        if self.policy is not None:
            # The policy may fold the just-committed round into a
            # compacted shard: the returned path is the round file as
            # committed, but it can already be unlinked (its data lives
            # on in the generation-tagged shard).
            self.maybe_compact()
        return path

    def _check_not_superseded(self) -> None:
        """Refuse to commit over a manifest this appender did not write.

        The appender caches the manifest state it opened with (or last
        wrote); a concurrent :func:`compact_shard_dir` bumps the
        generation and replaces the file list, so committing the
        cached state would atomically *unpublish* the compacted files.
        Comparing generation plus file list catches that (and any
        other external rewrite) at the last moment before the swap.
        """
        manifest = read_shard_manifest(self.directory)
        if manifest is None:
            raise StoreChangedError(
                f"{self.directory}: manifest.json disappeared under the "
                "appender; re-open the appender to resume"
            )
        generation = int(manifest.get("generation", 0))
        files = [str(name) for name in manifest["files"]]
        if generation != self._generation or files != self._files:
            raise StoreChangedError(
                f"{self.directory}: shard directory was compacted (or "
                f"otherwise rewritten) under this appender — manifest is "
                f"at generation {generation} with {len(files)} file(s), "
                f"appender opened at generation {self._generation} with "
                f"{len(self._files)} file(s); re-open the appender over "
                "the compacted directory to resume appending"
            )

    def _write_manifest(self) -> None:
        write_shard_manifest(
            self.directory,
            self._files,
            self._counts,
            self._ranges,
            self._generation,
            fsync=self._fsync,
        )

    # -- lifecycle policy ----------------------------------------------------

    def maybe_compact(self, policy: "CompactionPolicy | None" = None) -> bool:
        """Run the due lifecycle passes; ``True`` when anything changed.

        Checks ``policy`` (defaulting to the appender's own) and runs,
        in order: retention, the streaming compaction, tiering —
        re-adopting the swapped manifest after each pass so this
        appender's next commit sees its own lifecycle work rather
        than tripping :class:`~repro.trace.StoreChangedError`.
        Called automatically after every :meth:`commit` when the
        appender was constructed with a policy; callable manually
        between commits otherwise.  Refuses to run with snapshots
        pending — lifecycle passes rewrite committed state only.
        """
        self._require_open()
        policy = policy if policy is not None else self.policy
        if policy is None:
            raise ValueError(
                f"{self.directory}: no CompactionPolicy configured; pass one "
                "to maybe_compact() or to the appender"
            )
        if self._pending_times:
            raise ValueError(
                f"{self.directory}: {len(self._pending_times)} pending "
                "snapshot(s); commit the round before running the lifecycle"
            )
        changed = False
        if policy.retain_for is not None and self._files:
            if retain_shard_dir(self.directory, policy.retain_for):
                self._readopt()
                changed = True
        # A directory already at (or under) the target shard count
        # cannot be improved by compacting — and small stores carry an
        # irreducible header fraction, so re-checking slack there would
        # rewrite the same file after every commit, forever.
        if len(self._files) > policy.target_shards:
            slack = (
                shard_dir_slack(self.directory)
                if policy.max_slack_fraction is not None
                else 0.0
            )
            if policy.compaction_due(len(self._files), slack):
                compact_shard_dir(
                    self.directory,
                    policy.target_shards,
                    batch_snapshots=policy.batch_snapshots,
                )
                self._readopt()
                changed = True
        if policy.tier_after is not None and self._files:
            if tier_shard_dir(self.directory, policy.tier_after):
                self._readopt()
                changed = True
        return changed

    def _readopt(self) -> None:
        """Adopt the manifest a lifecycle pass just swapped in.

        Rebuilds the cached file list, counts, ranges, generation and
        naming cursor from disk.  The in-memory interner is left
        untouched: compaction merges the per-file prefix tables into
        exactly the cumulative table this appender already holds, and
        retention only drops files whose users the survivors' tables
        still cover, so future round files keep the prefix property.
        """
        manifest = read_shard_manifest(self.directory)
        if manifest is None:
            raise StoreChangedError(
                f"{self.directory}: manifest.json disappeared under the "
                "appender; re-open the appender to resume"
            )
        self._files = [str(name) for name in manifest["files"]]
        self._generation = int(manifest.get("generation", 0))
        self._counts = [int(c) for c in manifest.get("snapshot_counts", [])]
        self._ranges = [
            [float(r[0]), float(r[1])] if r else None
            for r in manifest.get("time_ranges", [])
        ]
        self._committed_s = sum(self._counts)
        self._committed_n = 0
        self._last_time = float("-inf")
        for name, rng in zip(self._files, self._ranges):
            header = read_rtrc_header(self.directory / name)
            self._committed_n += int(header["sections"]["user_ids"]["shape"][0])
            if rng:
                self._last_time = float(rng[1])
        self._next_index = (
            max((_shard_index(name) for name in self._files), default=-1) + 1
        )


# -- compaction and the storage lifecycle ------------------------------------

#: Snapshots the streaming compactor copies per batch.  Peak memory is
#: proportional to one batch's rows, never the store's.
DEFAULT_COMPACT_BATCH_SNAPSHOTS = 4096


def _lifecycle_checkpoint(event: str) -> None:
    """Fault-injection seam of the lifecycle rewrites — a no-op here.

    The streaming compactor, the tiering pass and the retention pass
    call this at every point a crash could land: after each copied
    batch, after each published file, immediately before and after the
    manifest swap, and after the old-file cleanup.  The fault suite
    (``tests/unit/trace/test_lifecycle_faults.py``) monkeypatches it
    to raise at the N-th call for every N and asserts readers only
    ever see the old or the new generation — never a torn mix.
    """


class _CompactSource:
    """One input shard file of a streaming compaction.

    Pass 1 records the cheap facts (shapes, name table, snapshot
    offsets, time endpoints) and the per-file bases that place the
    file in the global snapshot/row order.  Plain files stay open as
    lazy memmaps; gzipped cold files are dropped after the scan and
    re-inflated on demand one at a time, so the working set never
    holds more than one decompressed cold file.
    """

    __slots__ = (
        "path",
        "snap_base",
        "row_base",
        "snapshot_count",
        "row_count",
        "names",
        "offsets",
        "mapping",
        "metadata",
        "first_time",
        "last_time",
        "_store",
        "_keep",
    )

    def __init__(self, path: Path, snap_base: int, row_base: int) -> None:
        self.path = Path(path)
        store, self.metadata = read_store_rtrc(self.path, mmap=True)
        self.snap_base = int(snap_base)
        self.row_base = int(row_base)
        self.snapshot_count = store.snapshot_count
        self.row_count = store.observation_count
        self.names = store.users.names
        # A private copy: tiny (S + 1 ints), and it must not pin the
        # decompressed buffer of a gzipped file after release().
        self.offsets = np.array(store.snapshot_offsets, dtype=np.int64)
        self.mapping: np.ndarray | None = None
        if self.snapshot_count:
            self.first_time = float(store.times[0])
            self.last_time = float(store.times[-1])
        else:
            self.first_time = self.last_time = float("nan")
        self._keep = not _is_gzip(self.path)
        self._store = store if self._keep else None

    def store(self) -> ColumnarStore:
        if self._store is None:
            self._store, _ = read_store_rtrc(self.path, mmap=True)
        return self._store

    def release(self) -> None:
        """Drop a gzipped file's in-memory store; memmaps stay."""
        if not self._keep:
            self._store = None


def _iter_file_spans(sources, lo: int, hi: int):
    """``(source, local_a, local_b)`` spans covering global ``[lo, hi)``."""
    for src in sources:
        a = max(lo, src.snap_base) - src.snap_base
        b = min(hi, src.snap_base + src.snapshot_count) - src.snap_base
        if a < b:
            yield src, int(a), int(b)


def _global_rows(sources, pos: int) -> int:
    """Observation rows preceding global snapshot boundary ``pos``."""
    for src in sources:
        if pos <= src.snap_base + src.snapshot_count:
            return src.row_base + int(src.offsets[pos - src.snap_base])
    last = sources[-1]
    return last.row_base + last.row_count


def _time_at(sources, pos: int) -> float:
    """Snapshot time at global index ``pos``."""
    for src in sources:
        if src.snap_base <= pos < src.snap_base + src.snapshot_count:
            value = float(src.store().times[pos - src.snap_base])
            src.release()
            return value
    raise IndexError(f"snapshot {pos} beyond the shard directory")


def _section_chunks(section: str, sources, lo: int, hi: int, row0: int, batch: int):
    """Yield one output section's payload as bounded-size array chunks.

    The concatenation of the yielded chunks' bytes equals the section
    a materializing ``concat → split → write`` would have produced —
    offsets rebased to the output shard, ids remapped through the
    merged user table — while never holding more than ``batch``
    snapshots' worth of rows.
    """
    if section == "snapshot_offsets":
        yield np.zeros(1, dtype="<i8")
    for src, a, b in _iter_file_spans(sources, lo, hi):
        store = src.store()
        for j in range(a, b, batch):
            k = min(j + batch, b)
            if section == "times":
                yield np.ascontiguousarray(store.times[j:k], dtype="<f8")
            elif section == "snapshot_offsets":
                rebase = src.row_base - row0
                yield np.ascontiguousarray(
                    src.offsets[j + 1 : k + 1] + rebase, dtype="<i8"
                )
            elif section == "user_ids":
                r0, r1 = int(src.offsets[j]), int(src.offsets[k])
                ids = np.ascontiguousarray(store.user_ids[r0:r1], dtype="<i8")
                if src.mapping is not None and len(ids):
                    ids = src.mapping[ids]
                yield np.ascontiguousarray(ids, dtype="<i8")
            else:  # xyz
                r0, r1 = int(src.offsets[j]), int(src.offsets[k])
                yield np.ascontiguousarray(store.xyz[r0:r1], dtype="<f8")
        src.release()


def _write_streamed_shard(
    target: Path,
    sources,
    lo: int,
    hi: int,
    row0: int,
    rows: int,
    target_names: Sequence[str],
    metadata: TraceMetadata,
    batch: int,
    gzip_out: bool,
) -> Path:
    """Stream one compacted output shard, byte-identical to a one-shot write.

    All output shapes are known from the pass-1 scan, so the preamble,
    JSON header and section offsets are computed exactly as
    ``write_store_rtrc`` would and the section payloads are then
    copied through in snapshot batches — for plain files the result is
    bit-for-bit what materializing the slice would have written (the
    gzip container differs only in its embedded mtime).  Written to a
    sibling temp file and renamed into place like every other
    publication in this module.
    """
    s_count = int(hi - lo)
    shapes = {
        "times": [s_count],
        "snapshot_offsets": [s_count + 1],
        "user_ids": [int(rows)],
        "xyz": [int(rows), 3],
    }
    sections: dict[str, dict[str, object]] = {}
    cursor = 0
    for name, dtype in _SECTION_DTYPES:
        offset = _align(cursor)
        nbytes = int(np.prod(shapes[name], dtype=np.int64)) * np.dtype(dtype).itemsize
        sections[name] = {
            "dtype": dtype,
            "shape": shapes[name],
            "offset": offset,
            "nbytes": nbytes,
        }
        cursor = offset + nbytes
    header = {
        "metadata": {name: getattr(metadata, name) for name in _METADATA_FIELDS},
        "users": list(target_names),
        "sections": sections,
    }
    header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(header_bytes))
    fd, tmp_name = _tempfile_for(target)
    try:
        with os.fdopen(fd, "wb") as raw:
            handle = gzip.open(raw, "wb") if gzip_out else raw
            try:
                handle.write(_PREAMBLE.pack(MAGIC, VERSION, 0, len(header_bytes)))
                handle.write(header_bytes)
                handle.write(b"\0" * (data_start - _PREAMBLE.size - len(header_bytes)))
                cursor = 0
                for name, _ in _SECTION_DTYPES:
                    offset = int(sections[name]["offset"])  # type: ignore[arg-type]
                    handle.write(b"\0" * (offset - cursor))
                    written = 0
                    for chunk in _section_chunks(name, sources, lo, hi, row0, batch):
                        payload = chunk.tobytes()
                        handle.write(payload)
                        written += len(payload)
                        _lifecycle_checkpoint("compact:batch")
                    cursor = offset + written
            finally:
                if gzip_out:
                    handle.close()
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def _compact_streaming(
    source: Path,
    old_files: Sequence[str],
    shards: int,
    gzip_shards: bool,
    generation: int,
    batch: int,
) -> tuple[list[str], list[int], list[list[float] | None], list[Path]]:
    """The bounded-memory compaction body: scan, merge tables, stream."""
    sources: list[_CompactSource] = []
    snap_base = row_base = 0
    last_time = float("-inf")
    for name in old_files:
        try:
            src = _CompactSource(source / name, snap_base, row_base)
        except FileNotFoundError as exc:
            raise TraceFormatError(
                f"{source}: manifest names missing shard file {name!r}"
            ) from exc
        if src.snapshot_count:
            if src.first_time <= last_time:
                raise TraceFormatError(
                    f"{source}: shard file {name!r} is not strictly after "
                    "its predecessors; the directory is not a time-ordered "
                    "shard dir"
                )
            last_time = src.last_time
        src.release()
        snap_base += src.snapshot_count
        row_base += src.row_count
        sources.append(src)
    total_snapshots = snap_base
    metadata = sources[0].metadata
    # Replicate concat_stores' table merge exactly: when every
    # non-empty file already carries the first file's table the ids
    # pass through; otherwise each file's names are interned, in file
    # order, into one merged table and its id column is remapped.
    non_empty = [s for s in sources if s.snapshot_count]
    file0_names = sources[0].names
    if not non_empty or all(s.names == file0_names for s in non_empty):
        target_names = list(file0_names)
    else:
        merged = UserInterner()
        for src in non_empty:
            mapping = np.fromiter(
                (merged.intern(name) for name in src.names),
                dtype=np.int64,
                count=len(src.names),
            )
            if not np.array_equal(mapping, np.arange(len(mapping))):
                src.mapping = mapping
        target_names = merged.names
    edges = shard_edges(total_snapshots, shards)
    suffix = ".rtrc.gz" if gzip_shards else ".rtrc"
    names: list[str] = []
    counts: list[int] = []
    ranges: list[list[float] | None] = []
    paths: list[Path] = []
    for index, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        lo, hi = int(lo), int(hi)
        name = f"shard-{index:05d}.g{generation}{suffix}"
        row0 = _global_rows(sources, lo)
        row1 = _global_rows(sources, hi)
        paths.append(
            _write_streamed_shard(
                source / name,
                sources,
                lo,
                hi,
                row0,
                row1 - row0,
                target_names,
                metadata,
                batch,
                gzip_shards,
            )
        )
        _lifecycle_checkpoint("compact:shard-published")
        names.append(name)
        counts.append(hi - lo)
        ranges.append(
            [_time_at(sources, lo), _time_at(sources, hi - 1)] if hi > lo else None
        )
    return names, counts, ranges, paths


def compact_shard_dir(
    directory: str | Path,
    shards: int = 1,
    gzip_shards: bool = False,
    *,
    batch_snapshots: int | None = DEFAULT_COMPACT_BATCH_SNAPSHOTS,
) -> list[Path]:
    """Fold a shard directory into ``shards`` balanced shard files.

    A long-running :class:`RtrcDirAppender` crawl leaves one small
    file per round; compaction rewrites the directory as an even
    ``shards``-way split (the same partition :func:`to_rtrc_dir`
    produces) while keeping the loaded data **bit-for-bit** identical:
    ``concat_shards(read_rtrc_dir(d))`` returns the same columns and
    the same user table before and after (pinned by
    ``tests/unit/trace/test_compaction.py``).

    The rewrite **streams**: input shard files are copied
    shard-to-shard through fixed-size snapshot batches
    (``batch_snapshots`` at a time), so peak memory is bounded by the
    batch — not the store — and the directory you most need to compact
    is exactly the one this can still handle.  The streamed output is
    byte-for-byte what the old materializing path wrote (for ``.gz``
    outputs the gzip container differs only in its embedded mtime).
    Pass ``batch_snapshots=None`` to force the materializing rewrite —
    it concatenates the whole store in RAM and survives as the test
    oracle the streaming path is pinned against.

    The rewrite is crash-consistent: compacted files are written under
    *generation-tagged* names (``shard-00000.g<N>.rtrc``) that no
    previous manifest references, the manifest is then atomically
    swapped to the new file list — the commit point — and only
    afterwards are the old files unlinked.  A crash before the swap
    leaves the directory exactly as it was (plus orphans the next
    appender cleans up); a crash after it leaves a fully valid
    compacted directory plus unlinked-later debris.  Concurrent
    *readers* holding memmaps keep their consistent view (unlink only
    removes the name), and live followers re-open via the typed
    :class:`~repro.trace.StoreChangedError`.  An external compaction
    under a live appender is still refused by the *appender* (its next
    commit raises ``StoreChangedError``); the appender's own
    between-commit compaction (:class:`CompactionPolicy`) re-adopts
    the new manifest instead.

    Returns the new shard file paths, in time order.
    """
    source = Path(directory)
    manifest = read_shard_manifest(source)
    old_files = list_rtrc_dir(source)
    if not old_files:
        raise TraceFormatError(f"{source}: no shard files found")
    generation = (int(manifest.get("generation", 0)) if manifest else 0) + 1
    suffix = ".rtrc.gz" if gzip_shards else ".rtrc"
    if batch_snapshots is None:
        trace = concat_shards(read_rtrc_dir(source, mmap=True))
        parts = split_time_shards(trace, shards)
        names = [
            f"shard-{index:05d}.g{generation}{suffix}"
            for index in range(len(parts))
        ]
        paths = [
            write_trace_rtrc(part, source / name)
            for part, name in zip(parts, names)
        ]
        counts = [len(p) for p in parts]
        ranges: list[list[float] | None] = [
            [p.start_time, p.end_time] if len(p) else None for p in parts
        ]
    else:
        if batch_snapshots < 1:
            raise ValueError(
                f"batch_snapshots must be >= 1, got {batch_snapshots}"
            )
        names, counts, ranges, paths = _compact_streaming(
            source, old_files, shards, gzip_shards, generation, int(batch_snapshots)
        )
    _lifecycle_checkpoint("compact:pre-commit")
    write_shard_manifest(source, names, counts, ranges, generation)
    _lifecycle_checkpoint("compact:committed")
    survivors = set(names)
    for name in old_files:
        if name not in survivors:
            try:
                (source / name).unlink()
            except FileNotFoundError:
                pass
    _lifecycle_checkpoint("compact:cleaned")
    return paths


# -- slack, tiering, retention ------------------------------------------------


def shard_dir_slack(directory: str | Path) -> float:
    """Fraction of the directory's on-disk bytes that are not payload.

    Payload is the four column sections (times, snapshot offsets, ids,
    coordinates); everything else — per-file preambles, JSON headers
    with their repeated cumulative user tables, alignment padding — is
    overhead that compaction reclaims.  A directory of many small
    round files approaches 1.0; a freshly compacted single shard sits
    near 0.0.  Gzipped files count their *compressed* size, so tiering
    also lowers slack.  Reads only the headers (cheap even for ``.gz``
    files: decompression stops after the header blocks).
    """
    source = Path(directory)
    payload = 0
    disk = 0
    for name in list_rtrc_dir(source):
        path = source / name
        header = read_rtrc_header(path)
        for section in header["sections"].values():
            payload += int(section["nbytes"])
        disk += path.stat().st_size
    if disk <= 0:
        return 0.0
    return max(0.0, 1.0 - payload / disk)


@dataclass(frozen=True)
class CompactionPolicy:
    """When and how :class:`RtrcDirAppender` folds its own directory.

    A policy makes the lifecycle self-driving: after every committed
    round the appender checks the thresholds and runs the due passes —
    retention first (no point compacting data about to be dropped),
    then the streaming compaction, then tiering — re-adopting the
    swapped manifest after each, so its own next commit does not trip
    :class:`~repro.trace.StoreChangedError`.  External followers
    (``slmob serve``, ``analyze --follow``) see the usual generation
    bump and re-open.

    Parameters
    ----------
    max_round_files:
        Compact when the directory holds more than this many committed
        files.  The workhorse threshold for long crawls: bounds both
        per-open file handles and manifest size.
    max_slack_fraction:
        Compact when :func:`shard_dir_slack` exceeds this fraction —
        a size-based trigger for workloads whose rounds are so small
        the header overhead dominates.
    target_shards:
        How many balanced shard files a triggered compaction leaves.
    batch_snapshots:
        Batch size handed to the streaming compactor; bounds the
        compaction's peak memory.
    tier_after:
        Age threshold (trace-time seconds before the newest committed
        snapshot) past which cold shard files are gzipped in place.
        Note a compaction rewrites tiered files back into plain hot
        shards, so tiering pairs best with ``target_shards > 1`` or
        file-count thresholds loose enough to leave cold files alone.
    retain_for:
        Retention horizon: shard files whose *entire* time range is
        older than this (again relative to the newest committed
        snapshot) are dropped, oldest-first, manifest swap first.

    At least one of the four thresholds must be set — a policy that
    can never fire is a configuration error, not a no-op.
    """

    max_round_files: int | None = None
    max_slack_fraction: float | None = None
    target_shards: int = 1
    batch_snapshots: int = DEFAULT_COMPACT_BATCH_SNAPSHOTS
    tier_after: float | None = None
    retain_for: float | None = None

    def __post_init__(self) -> None:
        if (
            self.max_round_files is None
            and self.max_slack_fraction is None
            and self.tier_after is None
            and self.retain_for is None
        ):
            raise ValueError(
                "CompactionPolicy needs at least one threshold: "
                "max_round_files, max_slack_fraction, tier_after or "
                "retain_for"
            )
        if self.max_round_files is not None and self.max_round_files < 1:
            raise ValueError(
                f"max_round_files must be >= 1, got {self.max_round_files}"
            )
        if self.max_slack_fraction is not None and not (
            0.0 <= self.max_slack_fraction < 1.0
        ):
            raise ValueError(
                "max_slack_fraction must be in [0, 1), got "
                f"{self.max_slack_fraction}"
            )
        if self.target_shards < 1:
            raise ValueError(f"target_shards must be >= 1, got {self.target_shards}")
        if self.batch_snapshots < 1:
            raise ValueError(
                f"batch_snapshots must be >= 1, got {self.batch_snapshots}"
            )
        if self.tier_after is not None and self.tier_after < 0:
            raise ValueError(f"tier_after must be >= 0, got {self.tier_after}")
        if self.retain_for is not None and self.retain_for < 0:
            raise ValueError(f"retain_for must be >= 0, got {self.retain_for}")

    def compaction_due(self, file_count: int, slack: float) -> bool:
        """Whether the compaction thresholds say the directory is due."""
        if self.max_round_files is not None and file_count > self.max_round_files:
            return True
        if self.max_slack_fraction is not None and slack > self.max_slack_fraction:
            return True
        return False


def _shard_index(name: str) -> int:
    """The numeric index in a ``shard-NNNNN[.gK][.rtrc[.gz]]`` name (-1 odd)."""
    stem = name.split(".", 1)[0]
    try:
        return int(stem.split("-", 1)[1])
    except (IndexError, ValueError):
        return -1


def _dir_state(
    source: Path,
) -> tuple[list[str], list[int], list[list[float] | None], int]:
    """``(files, snapshot_counts, time_ranges, generation)`` of a shard dir.

    Served from the manifest when it is present and consistent with
    the directory listing; rebuilt from the file headers otherwise
    (foreign directories written without a manifest).
    """
    manifest = read_shard_manifest(source)
    files = list_rtrc_dir(source)
    if not files:
        raise TraceFormatError(f"{source}: no shard files found")
    generation = int(manifest.get("generation", 0)) if manifest else 0
    counts = manifest.get("snapshot_counts") if manifest else None
    ranges = manifest.get("time_ranges") if manifest else None
    if (
        manifest is not None
        and [str(name) for name in manifest["files"]] == files
        and isinstance(counts, list)
        and isinstance(ranges, list)
        and len(counts) == len(files)
        and len(ranges) == len(files)
    ):
        return (
            files,
            [int(c) for c in counts],
            [[float(r[0]), float(r[1])] if r else None for r in ranges],
            generation,
        )
    rebuilt_counts: list[int] = []
    rebuilt_ranges: list[list[float] | None] = []
    for name in files:
        store, _ = read_store_rtrc(source / name, mmap=not _is_gzip(source / name))
        count = store.snapshot_count
        rebuilt_counts.append(count)
        rebuilt_ranges.append(
            [float(store.times[0]), float(store.times[-1])] if count else None
        )
    return files, rebuilt_counts, rebuilt_ranges, generation


def _gzip_file(src: Path, dst: Path) -> Path:
    """Gzip ``src`` into ``dst`` through a temp file, 1 MiB at a time."""
    fd, tmp_name = _tempfile_for(dst)
    try:
        with (
            os.fdopen(fd, "wb") as raw,
            gzip.open(raw, "wb") as out,
            open(src, "rb") as reader,
        ):
            shutil.copyfileobj(reader, out, 1 << 20)
        os.replace(tmp_name, dst)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return dst


def tier_shard_dir(directory: str | Path, older_than: float) -> list[Path]:
    """Gzip cold shard files in place; the manifest swap is the commit.

    A shard file is *cold* when its entire time range ended more than
    ``older_than`` trace-time seconds before the directory's newest
    committed snapshot.  Each cold plain file is rewritten as
    ``<name>.gz`` next to it (streamed, 1 MiB at a time — never
    decoded), then one manifest swap publishes all the new names with
    a generation bump (readers re-open via
    :class:`~repro.trace.StoreChangedError`, caches keyed on
    :func:`shard_dir_generation` drop), and only then are the plain
    originals unlinked.  Loading the directory yields bit-identical
    columns before and after — readers already inflate ``.gz`` shards
    transparently; they just stop memmapping them.

    The newest non-empty file is never tiered (its range ends exactly
    at the newest snapshot), so a live appender keeps appending plain
    hot files.  Empty round files are left alone.  Returns the new
    ``.gz`` paths (empty list when nothing was cold).
    """
    if older_than < 0:
        raise ValueError(f"older_than must be >= 0, got {older_than}")
    source = Path(directory)
    files, counts, ranges, generation = _dir_state(source)
    newest = max((r[1] for r in ranges if r), default=None)
    if newest is None:
        return []
    cutoff = newest - older_than
    new_names = list(files)
    tiered: list[str] = []
    for index, (name, rng) in enumerate(zip(files, ranges)):
        if rng is None or rng[1] >= cutoff or _is_gzip(source / name):
            continue
        gz_name = name + ".gz"
        _gzip_file(source / name, source / gz_name)
        _lifecycle_checkpoint("tier:file-published")
        new_names[index] = gz_name
        tiered.append(gz_name)
    if not tiered:
        return []
    _lifecycle_checkpoint("tier:pre-commit")
    write_shard_manifest(source, new_names, counts, ranges, generation + 1)
    _lifecycle_checkpoint("tier:committed")
    for old, new in zip(files, new_names):
        if old != new:
            try:
                (source / old).unlink()
            except FileNotFoundError:
                pass
    _lifecycle_checkpoint("tier:cleaned")
    return [source / name for name in tiered]


def retain_shard_dir(directory: str | Path, older_than: float) -> list[str]:
    """Drop shard files wholly older than the retention horizon.

    Retention removes the longest *prefix* of the file list in which
    every file's time range ended more than ``older_than`` trace-time
    seconds before the directory's newest committed snapshot (empty
    round files inside that prefix go with it).  Prefix-only pruning
    keeps the survivors a valid time-ordered shard dir, and because
    every committed file carries the cumulative user table of its
    predecessors, the surviving files stay self-describing — interned
    ids remain comparable across the cut.

    The manifest swap (with a generation bump) is the commit point;
    files are unlinked only afterwards, so an in-flight query that
    loaded the old manifest keeps its memmaps (POSIX unlink removes
    the name, not the inode) and the *next* query sees the pruned
    directory or a :class:`~repro.trace.StoreChangedError` re-open,
    never a torn mix.  The newest non-empty file always survives.
    Returns the dropped file names, oldest first.
    """
    if older_than < 0:
        raise ValueError(f"older_than must be >= 0, got {older_than}")
    source = Path(directory)
    files, counts, ranges, generation = _dir_state(source)
    newest = max((r[1] for r in ranges if r), default=None)
    if newest is None:
        return []
    cutoff = newest - older_than
    drop = 0
    for rng in ranges:
        if rng is not None and rng[1] >= cutoff:
            break
        drop += 1
    if not drop:
        return []
    dropped = files[:drop]
    _lifecycle_checkpoint("retain:pre-commit")
    write_shard_manifest(
        source, files[drop:], counts[drop:], ranges[drop:], generation + 1
    )
    _lifecycle_checkpoint("retain:committed")
    for name in dropped:
        try:
            (source / name).unlink()
        except FileNotFoundError:
            pass
    _lifecycle_checkpoint("retain:cleaned")
    return dropped
