"""Time-window sharding of columnar traces.

A shard is an ordinary :class:`~repro.trace.Trace` over a contiguous
snapshot range of its parent; because the columnar layout is CSR-flat
and shards share the parent's :class:`~repro.trace.UserInterner`, a
shard split is a handful of array slices and concatenation is a
handful of array concatenations — no re-parsing, no re-interning.

This is the substrate :class:`~repro.core.sharded.ShardedAnalyzer`
fans work over; the split/concat pair round-trips exactly::

    concat_shards(split_time_shards(trace, k)).columns  ==  trace.columns
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.trace.columnar import ColumnarStore, UserInterner, empty_store
from repro.trace.storage import TraceFormatError, read_trace_rtrc, write_trace_rtrc
from repro.trace.trace import Trace

#: Name of the shard-directory manifest written by :func:`to_rtrc_dir`.
MANIFEST_NAME = "manifest.json"


def shard_edges(snapshot_count: int, k: int) -> np.ndarray:
    """Snapshot boundaries of an even ``k``-way split — ``(k + 1,)`` int64.

    Shard ``i`` covers snapshots ``edges[i]:edges[i + 1]``; the first
    ``S % k`` shards get one extra snapshot (the same partition
    ``np.array_split`` produces), and with ``k`` larger than the
    snapshot count the tail shards are empty.
    """
    if k < 1:
        raise ValueError(f"shard count must be >= 1, got {k}")
    sizes = np.full(k, snapshot_count // k, dtype=np.int64)
    sizes[: snapshot_count % k] += 1
    edges = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(sizes, out=edges[1:])
    return edges


def split_time_shards(trace: Trace, k: int) -> list[Trace]:
    """Partition a trace into ``k`` contiguous time-window shards.

    Snapshots are split as evenly as possible (the first ``S % k``
    shards get one extra snapshot); with ``k`` larger than the
    snapshot count the tail shards are empty.  All shards share the
    parent's metadata and interner, so interned ids stay comparable
    across shards and :func:`concat_shards` restores the parent
    exactly.  Shards are zero-copy slice views
    (:meth:`~repro.trace.columnar.ColumnarStore.slice_snapshots`), so
    splitting a memmap-backed trace touches no data pages.
    """
    edges = shard_edges(trace.columns.snapshot_count, k)
    return [
        Trace.from_columns(
            trace.columns.slice_snapshots(int(lo), int(hi)), trace.metadata
        )
        for lo, hi in zip(edges[:-1], edges[1:])
    ]


def to_rtrc_dir(
    trace: Trace,
    k: int,
    directory: str | Path,
    gzip_shards: bool = False,
) -> list[Path]:
    """Materialize ``k`` per-shard ``.rtrc`` files under ``directory``.

    This is the on-disk counterpart of :func:`split_time_shards`: each
    shard (empty tail shards included) becomes its own memmappable
    file, so parallel workers — process pools, other machines — can
    load exactly their slice with zero parsing and no shared state.
    Every shard file carries the parent's full interner, so interned
    ids stay comparable across shard files.

    A ``manifest.json`` records the shard order, per-shard snapshot
    counts and time ranges; :func:`read_rtrc_dir` uses it to restore
    the shards in order, and ``concat_shards(read_rtrc_dir(d))``
    round-trips the original trace bit-for-bit.  The directory layout
    and manifest schema are specified in ``docs/file-format.md``.

    Parameters
    ----------
    trace:
        The trace to split; ``directory`` is created if needed.
    k:
        Number of contiguous time shards (the first ``S % k`` get one
        extra snapshot; ``k`` beyond the snapshot count yields empty
        tail shards, which are still written so the manifest keeps
        the requested shard count).
    gzip_shards:
        Write ``.rtrc.gz`` shards — smaller on disk but loaded in
        memory instead of memmapped; prefer plain shards for worker
        fan-out.

    Returns the shard file paths, in time order.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    shards = split_time_shards(trace, k)
    suffix = ".rtrc.gz" if gzip_shards else ".rtrc"
    paths: list[Path] = []
    for index, shard in enumerate(shards):
        paths.append(write_trace_rtrc(shard, target / f"shard-{index:05d}{suffix}"))
    manifest = {
        "format": "rtrc-shard-dir",
        "version": 1,
        "shards": k,
        "files": [p.name for p in paths],
        "snapshot_counts": [len(s) for s in shards],
        "time_ranges": [
            [s.start_time, s.end_time] if len(s) else None for s in shards
        ],
    }
    (target / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return paths


def read_rtrc_dir(directory: str | Path, mmap: bool = True) -> list[Trace]:
    """Load the shard traces written by :func:`to_rtrc_dir`, in order.

    The manifest fixes the order; without one (foreign directories) the
    ``shard-*`` files are taken in name order.  When every shard file
    carries the same user table — always true for :func:`to_rtrc_dir`
    output — the loaded stores are re-pointed at one shared interner,
    so downstream code (``concat_shards``, the sharded analyzer
    merges) sees ids exactly as if the shards had been split in
    memory.

    With ``mmap`` (the default) each shard is a lazy memory-mapped
    view — opening a directory of huge shards costs one header parse
    per file; pass ``False`` to load copies.  Unreadable manifests and
    shard files named by a manifest but missing on disk raise
    :class:`~repro.trace.TraceFormatError`.
    """
    source = Path(directory)
    manifest_path = source / MANIFEST_NAME
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            files = [str(name) for name in manifest["files"]]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise TraceFormatError(
                f"{manifest_path}: unreadable shard manifest ({exc})"
            ) from exc
    else:
        files = sorted(
            p.name for p in source.glob("shard-*.rtrc*") if not p.name.endswith(".tmp")
        )
    if not files:
        raise TraceFormatError(f"{source}: no shard files found")
    shards = []
    for name in files:
        try:
            shards.append(read_trace_rtrc(source / name, mmap=mmap))
        except FileNotFoundError as exc:
            raise TraceFormatError(
                f"{source}: manifest names missing shard file {name!r}"
            ) from exc
    # Re-share one interner object across shards whose name tables
    # agree (ColumnarStore treats `users` as an immutable table, so
    # swapping in an equal one is safe and makes ids pass through
    # concat_stores untouched).
    first = shards[0].columns.users
    for shard in shards[1:]:
        if shard.columns.users.names == first.names:
            shard.columns.users = first
    return shards


def concat_stores(
    stores: Sequence[ColumnarStore],
    users: UserInterner | None = None,
) -> ColumnarStore:
    """Concatenate time-ordered stores into one store.

    Snapshot times must be strictly increasing across the
    concatenation (shards out of order are rejected by the store's own
    validation).  When every input shares one interner object the ids
    pass through untouched; otherwise names are re-interned into a
    merged table and the id columns are remapped through it.
    """
    inputs = list(stores)
    stores = [s for s in inputs if s.snapshot_count]
    if not stores:
        if users is None:
            users = inputs[0].users if inputs else None
        return empty_store(users)
    shared = users is None and all(s.users is stores[0].users for s in stores)
    # NB: an empty interner is falsy (it defines __len__), so the
    # caller-supplied table must be tested against None explicitly.
    target = (
        stores[0].users
        if shared
        else (users if users is not None else UserInterner())
    )
    times = np.concatenate([s.times for s in stores])
    counts = np.concatenate([np.diff(s.snapshot_offsets) for s in stores])
    offsets = np.zeros(len(times) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if shared:
        user_ids = np.concatenate([s.user_ids for s in stores])
    else:
        remapped = []
        for s in stores:
            mapping = np.fromiter(
                (target.intern(name) for name in s.users.names),
                dtype=np.int64,
                count=len(s.users),
            )
            remapped.append(mapping[s.user_ids] if len(s.user_ids) else s.user_ids)
        user_ids = np.concatenate(remapped)
    xyz = np.concatenate([s.xyz for s in stores])
    return ColumnarStore(times, offsets, user_ids, xyz, target)


def concat_shards(shards: Sequence[Trace]) -> Trace:
    """Concatenate time-ordered shard traces back into one trace.

    Metadata is taken from the first shard; shard times must be
    strictly increasing across the sequence.
    """
    if not shards:
        raise ValueError("cannot concatenate zero shards")
    store = concat_stores([shard.columns for shard in shards])
    return Trace.from_columns(store, shards[0].metadata)
