"""Time-window sharding of columnar traces.

A shard is an ordinary :class:`~repro.trace.Trace` over a contiguous
snapshot range of its parent; because the columnar layout is CSR-flat
and shards share the parent's :class:`~repro.trace.UserInterner`, a
shard split is a handful of array slices and concatenation is a
handful of array concatenations — no re-parsing, no re-interning.

This is the substrate :class:`~repro.core.sharded.ShardedAnalyzer`
fans work over; the split/concat pair round-trips exactly::

    concat_shards(split_time_shards(trace, k)).columns  ==  trace.columns
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.trace.columnar import ColumnarStore, UserInterner, empty_store
from repro.trace.trace import Trace


def split_time_shards(trace: Trace, k: int) -> list[Trace]:
    """Partition a trace into ``k`` contiguous time-window shards.

    Snapshots are split as evenly as possible (the first ``S % k``
    shards get one extra snapshot); with ``k`` larger than the
    snapshot count the tail shards are empty.  All shards share the
    parent's metadata and interner, so interned ids stay comparable
    across shards and :func:`concat_shards` restores the parent
    exactly.
    """
    if k < 1:
        raise ValueError(f"shard count must be >= 1, got {k}")
    parts = np.array_split(np.arange(trace.columns.snapshot_count), k)
    return [
        Trace.from_columns(trace.columns.select(part), trace.metadata)
        for part in parts
    ]


def concat_stores(
    stores: Sequence[ColumnarStore],
    users: UserInterner | None = None,
) -> ColumnarStore:
    """Concatenate time-ordered stores into one store.

    Snapshot times must be strictly increasing across the
    concatenation (shards out of order are rejected by the store's own
    validation).  When every input shares one interner object the ids
    pass through untouched; otherwise names are re-interned into a
    merged table and the id columns are remapped through it.
    """
    inputs = list(stores)
    stores = [s for s in inputs if s.snapshot_count]
    if not stores:
        if users is None:
            users = inputs[0].users if inputs else None
        return empty_store(users)
    shared = users is None and all(s.users is stores[0].users for s in stores)
    # NB: an empty interner is falsy (it defines __len__), so the
    # caller-supplied table must be tested against None explicitly.
    target = (
        stores[0].users
        if shared
        else (users if users is not None else UserInterner())
    )
    times = np.concatenate([s.times for s in stores])
    counts = np.concatenate([np.diff(s.snapshot_offsets) for s in stores])
    offsets = np.zeros(len(times) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if shared:
        user_ids = np.concatenate([s.user_ids for s in stores])
    else:
        remapped = []
        for s in stores:
            mapping = np.fromiter(
                (target.intern(name) for name in s.users.names),
                dtype=np.int64,
                count=len(s.users),
            )
            remapped.append(mapping[s.user_ids] if len(s.user_ids) else s.user_ids)
        user_ids = np.concatenate(remapped)
    xyz = np.concatenate([s.xyz for s in stores])
    return ColumnarStore(times, offsets, user_ids, xyz, target)


def concat_shards(shards: Sequence[Trace]) -> Trace:
    """Concatenate time-ordered shard traces back into one trace.

    Metadata is taken from the first shard; shard times must be
    strictly increasing across the sequence.
    """
    if not shards:
        raise ValueError("cannot concatenate zero shards")
    store = concat_stores([shard.columns for shard in shards])
    return Trace.from_columns(store, shards[0].metadata)
