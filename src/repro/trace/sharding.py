"""Time-window sharding of columnar traces.

A shard is an ordinary :class:`~repro.trace.Trace` over a contiguous
snapshot range of its parent; because the columnar layout is CSR-flat
and shards share the parent's :class:`~repro.trace.UserInterner`, a
shard split is a handful of array slices and concatenation is a
handful of array concatenations — no re-parsing, no re-interning.

This is the substrate :class:`~repro.core.sharded.ShardedAnalyzer`
fans work over; the split/concat pair round-trips exactly::

    concat_shards(split_time_shards(trace, k)).columns  ==  trace.columns
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.trace.columnar import ColumnarStore, UserInterner, empty_store
from repro.trace.storage import (
    StoreChangedError,
    TraceFormatError,
    _tempfile_for,
    read_store_rtrc,
    read_trace_rtrc,
    write_store_rtrc,
    write_trace_rtrc,
)
from repro.trace.trace import Trace, TraceMetadata

#: Name of the shard-directory manifest written by :func:`to_rtrc_dir`.
MANIFEST_NAME = "manifest.json"


def shard_edges(snapshot_count: int, k: int) -> np.ndarray:
    """Snapshot boundaries of an even ``k``-way split — ``(k + 1,)`` int64.

    Shard ``i`` covers snapshots ``edges[i]:edges[i + 1]``; the first
    ``S % k`` shards get one extra snapshot (the same partition
    ``np.array_split`` produces), and with ``k`` larger than the
    snapshot count the tail shards are empty.
    """
    if k < 1:
        raise ValueError(f"shard count must be >= 1, got {k}")
    sizes = np.full(k, snapshot_count // k, dtype=np.int64)
    sizes[: snapshot_count % k] += 1
    edges = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(sizes, out=edges[1:])
    return edges


def split_time_shards(trace: Trace, k: int) -> list[Trace]:
    """Partition a trace into ``k`` contiguous time-window shards.

    Snapshots are split as evenly as possible (the first ``S % k``
    shards get one extra snapshot); with ``k`` larger than the
    snapshot count the tail shards are empty.  All shards share the
    parent's metadata and interner, so interned ids stay comparable
    across shards and :func:`concat_shards` restores the parent
    exactly.  Shards are zero-copy slice views
    (:meth:`~repro.trace.columnar.ColumnarStore.slice_snapshots`), so
    splitting a memmap-backed trace touches no data pages.
    """
    edges = shard_edges(trace.columns.snapshot_count, k)
    return [
        Trace.from_columns(
            trace.columns.slice_snapshots(int(lo), int(hi)), trace.metadata
        )
        for lo, hi in zip(edges[:-1], edges[1:])
    ]


def to_rtrc_dir(
    trace: Trace,
    k: int,
    directory: str | Path,
    gzip_shards: bool = False,
) -> list[Path]:
    """Materialize ``k`` per-shard ``.rtrc`` files under ``directory``.

    This is the on-disk counterpart of :func:`split_time_shards`: each
    shard (empty tail shards included) becomes its own memmappable
    file, so parallel workers — process pools, other machines — can
    load exactly their slice with zero parsing and no shared state.
    Every shard file carries the parent's full interner, so interned
    ids stay comparable across shard files.

    A ``manifest.json`` records the shard order, per-shard snapshot
    counts and time ranges; :func:`read_rtrc_dir` uses it to restore
    the shards in order, and ``concat_shards(read_rtrc_dir(d))``
    round-trips the original trace bit-for-bit.  The directory layout
    and manifest schema are specified in ``docs/file-format.md``.

    Parameters
    ----------
    trace:
        The trace to split; ``directory`` is created if needed.
    k:
        Number of contiguous time shards (the first ``S % k`` get one
        extra snapshot; ``k`` beyond the snapshot count yields empty
        tail shards, which are still written so the manifest keeps
        the requested shard count).
    gzip_shards:
        Write ``.rtrc.gz`` shards — smaller on disk but loaded in
        memory instead of memmapped; prefer plain shards for worker
        fan-out.

    Returns the shard file paths, in time order.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    shards = split_time_shards(trace, k)
    suffix = ".rtrc.gz" if gzip_shards else ".rtrc"
    paths: list[Path] = []
    for index, shard in enumerate(shards):
        paths.append(write_trace_rtrc(shard, target / f"shard-{index:05d}{suffix}"))
    write_shard_manifest(
        target,
        [p.name for p in paths],
        [len(s) for s in shards],
        [[s.start_time, s.end_time] if len(s) else None for s in shards],
    )
    return paths


def _fsync_path(path: Path) -> None:
    """Flush one file's (or directory's) data and metadata to disk."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_shard_manifest(
    directory: Path,
    files: Sequence[str],
    snapshot_counts: Sequence[int],
    time_ranges: Sequence[list[float] | None],
    generation: int = 0,
    fsync: bool = False,
) -> Path:
    """Atomically (re)write a shard directory's ``manifest.json``.

    The write goes through a sibling temp file plus rename, so a
    reader never parses a half-written manifest and a crash leaves
    the previous manifest intact — the manifest swap is the commit
    point for both append rounds (:class:`RtrcDirAppender`) and
    compaction (:func:`compact_shard_dir`).  ``generation`` (omitted
    while zero) counts compactions; compacted shard files carry it in
    their names so a compaction never overwrites a file an old
    manifest still references.
    """
    manifest = {
        "format": "rtrc-shard-dir",
        "version": 1,
        "shards": len(files),
        "files": list(files),
        "snapshot_counts": list(snapshot_counts),
        "time_ranges": list(time_ranges),
    }
    if generation:
        manifest["generation"] = generation
    target = directory / MANIFEST_NAME
    payload = json.dumps(manifest, indent=2) + "\n"
    fd, tmp_name = _tempfile_for(target)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        if fsync:
            _fsync_path(directory)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def read_shard_manifest(directory: str | Path) -> dict | None:
    """Parse a shard directory's manifest, or ``None`` when absent.

    Unreadable manifests (bad JSON, missing keys) raise
    :class:`~repro.trace.TraceFormatError` — a directory that claims
    to be a shard dir but cannot say what it holds is corrupt, not
    foreign.
    """
    manifest_path = Path(directory) / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        files = manifest["files"]
        if not isinstance(files, list):
            raise TypeError(f"'files' is {type(files).__name__}, not a list")
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise TraceFormatError(
            f"{manifest_path}: unreadable shard manifest ({exc})"
        ) from exc
    return manifest


def shard_dir_generation(directory: str | Path) -> tuple[int, int]:
    """``(compaction generation, committed file count)`` of a shard dir.

    Every commit grows the file count and every compaction bumps the
    generation (resetting the count), so the pair changes on *exactly*
    the events that can change query results over the directory — a
    ready-made cache-invalidation token.  The query service renders it
    as the HTTP ETag of its cached answers.  A manifest-less (foreign)
    directory reports generation 0 over the globbed file list.
    """
    manifest = read_shard_manifest(directory)
    if manifest is None:
        return (0, len(list_rtrc_dir(directory)))
    return (int(manifest.get("generation", 0)), len(manifest["files"]))


def list_rtrc_dir(directory: str | Path) -> list[str]:
    """Shard file names of a directory, in load order.

    The manifest fixes the order (and may legitimately be empty — a
    streaming shard dir whose first round has not committed yet);
    without one (foreign directories) the ``shard-*`` files are taken
    in name order.  An empty list means "no shards yet", not an error
    — callers that need at least one shard check themselves.
    """
    source = Path(directory)
    manifest = read_shard_manifest(source)
    if manifest is not None:
        return [str(name) for name in manifest["files"]]
    return sorted(
        p.name for p in source.glob("shard-*.rtrc*") if not p.name.endswith(".tmp")
    )


def read_rtrc_dir(directory: str | Path, mmap: bool = True) -> list[Trace]:
    """Load the shard traces written by :func:`to_rtrc_dir`, in order.

    The manifest fixes the order; without one (foreign directories) the
    ``shard-*`` files are taken in name order.  When every shard file
    carries the same user table — always true for :func:`to_rtrc_dir`
    output — the loaded stores are re-pointed at one shared interner,
    so downstream code (``concat_shards``, the sharded analyzer
    merges) sees ids exactly as if the shards had been split in
    memory.

    With ``mmap`` (the default) each shard is a lazy memory-mapped
    view — opening a directory of huge shards costs one header parse
    per file; pass ``False`` to load copies.  Unreadable manifests and
    shard files named by a manifest but missing on disk raise
    :class:`~repro.trace.TraceFormatError`.
    """
    source = Path(directory)
    files = list_rtrc_dir(source)
    if not files:
        raise TraceFormatError(f"{source}: no shard files found")
    shards = []
    for name in files:
        try:
            shards.append(read_trace_rtrc(source / name, mmap=mmap))
        except FileNotFoundError as exc:
            raise TraceFormatError(
                f"{source}: manifest names missing shard file {name!r}"
            ) from exc
    # Re-share one interner object across shards whose name tables
    # agree (ColumnarStore treats `users` as an immutable table, so
    # swapping in an equal one is safe and makes ids pass through
    # concat_stores untouched).
    first = shards[0].columns.users
    for shard in shards[1:]:
        if shard.columns.users.names == first.names:
            shard.columns.users = first
    return shards


def concat_stores(
    stores: Sequence[ColumnarStore],
    users: UserInterner | None = None,
) -> ColumnarStore:
    """Concatenate time-ordered stores into one store.

    Snapshot times must be strictly increasing across the
    concatenation (shards out of order are rejected by the store's own
    validation).  When every input shares one interner object the ids
    pass through untouched; otherwise names are re-interned into a
    merged table and the id columns are remapped through it.
    """
    inputs = list(stores)
    stores = [s for s in inputs if s.snapshot_count]
    if not stores:
        if users is None:
            users = inputs[0].users if inputs else None
        return empty_store(users)
    shared = users is None and all(s.users is stores[0].users for s in stores)
    # NB: an empty interner is falsy (it defines __len__), so the
    # caller-supplied table must be tested against None explicitly.
    target = (
        stores[0].users
        if shared
        else (users if users is not None else UserInterner())
    )
    times = np.concatenate([s.times for s in stores])
    counts = np.concatenate([np.diff(s.snapshot_offsets) for s in stores])
    offsets = np.zeros(len(times) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if shared:
        user_ids = np.concatenate([s.user_ids for s in stores])
    else:
        remapped = []
        for s in stores:
            mapping = np.fromiter(
                (target.intern(name) for name in s.users.names),
                dtype=np.int64,
                count=len(s.users),
            )
            remapped.append(mapping[s.user_ids] if len(s.user_ids) else s.user_ids)
        user_ids = np.concatenate(remapped)
    xyz = np.concatenate([s.xyz for s in stores])
    return ColumnarStore(times, offsets, user_ids, xyz, target)


def concat_shards(shards: Sequence[Trace]) -> Trace:
    """Concatenate time-ordered shard traces back into one trace.

    Metadata is taken from the first shard; shard times must be
    strictly increasing across the sequence.
    """
    if not shards:
        raise ValueError("cannot concatenate zero shards")
    store = concat_stores([shard.columns for shard in shards])
    return Trace.from_columns(store, shards[0].metadata)


# -- appendable shard directories -------------------------------------------


class RtrcDirAppender:
    """Stream a crawl into a shard *directory*: one file per round.

    The single-file :class:`~repro.trace.RtrcAppender` grows one store
    in place; this is its fan-out-friendly sibling — every committed
    append round becomes a brand-new immutable ``shard-*.rtrc`` file
    plus an atomic ``manifest.json`` swap.  Because committed rounds
    never change, a long-running crawl is analyzable *in parallel
    while it grows*: process workers memmap-load the round files
    directly (:class:`~repro.core.live.LiveAnalyzer` with
    ``backend="process"`` reuses them as its part files — nothing is
    re-materialized), and readers racing an append only ever see fully
    written files through the previous or the next manifest.

    Parameters
    ----------
    directory:
        The shard directory to create or extend.  An existing
        directory written by :func:`to_rtrc_dir`, a previous appender,
        or :func:`compact_shard_dir` is resumed: the cumulative user
        table is rebuilt from the committed files (each file's table
        is a prefix of the next, so interned ids stay comparable
        across every file, old and new), and shard files present on
        disk but absent from the manifest — the debris of a crash
        between the file write and the manifest swap — are deleted
        (``recovered_files``).
    metadata:
        Trace metadata stamped onto every round file this appender
        writes.  Defaults to the newest committed file's metadata for
        an existing directory and to the
        :class:`~repro.trace.TraceMetadata` defaults otherwise; the
        :attr:`metadata` property is assignable any time (monitors
        learn the land only on attach).
    fsync:
        When True every commit fsyncs the round file and the
        directory before, and the manifest after, the swap — making
        the commit durable against power loss, not just process
        crash (the same knob :class:`~repro.trace.RtrcAppender`
        offers).  Off by default: the crawl loop favours throughput,
        and a torn commit is recovered on reopen either way.

    Usage mirrors :class:`~repro.trace.RtrcAppender` — it is a drop-in
    monitor sink::

        with RtrcDirAppender("crawl-shards/", metadata=meta) as out:
            for t, names, coords in observations:
                out.append_snapshot(t, names, coords)
                ...
                out.commit()   # this round becomes shard-0000N.rtrc

    Pending (uncommitted) snapshots live in memory and are lost on a
    crash — the manifest swap in :meth:`commit` is the durability
    point, and it publishes whole rounds only, so a reader can never
    observe a torn round.
    """

    def __init__(
        self,
        directory: str | Path,
        metadata: TraceMetadata | None = None,
        *,
        fsync: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        self._users = UserInterner()
        self._metadata = metadata if metadata is not None else TraceMetadata()
        self._files: list[str] = []
        self._counts: list[int] = []
        self._ranges: list[list[float] | None] = []
        self._generation = 0
        self._committed_s = 0
        self._committed_n = 0
        self._last_time = float("-inf")
        self._closed = False
        #: Orphaned shard files deleted while opening (crash debris).
        self.recovered_files: list[str] = []
        # The pending round, in memory until commit.
        self._pending_times: list[float] = []
        self._pending_ids: list[np.ndarray] = []
        self._pending_xyz: list[np.ndarray] = []
        self._pending_rows = 0
        self._adopt_existing(metadata)
        if read_shard_manifest(self.directory) is None:
            # A fresh directory becomes self-describing immediately:
            # an empty manifest distinguishes "no rounds committed
            # yet" from "not a shard directory".
            self._write_manifest()

    # -- construction -------------------------------------------------------

    def _adopt_existing(self, metadata: TraceMetadata | None) -> None:
        manifest = read_shard_manifest(self.directory)
        if manifest is not None:
            files = [str(name) for name in manifest["files"]]
            self._generation = int(manifest.get("generation", 0))
        else:
            files = list_rtrc_dir(self.directory)
        for name in files:
            path = self.directory / name
            try:
                store, file_meta = read_store_rtrc(path, mmap=True)
            except FileNotFoundError as exc:
                raise TraceFormatError(
                    f"{self.directory}: manifest names missing shard file "
                    f"{name!r}"
                ) from exc
            for user in store.users.names:
                self._users.intern(user)
            count = store.snapshot_count
            self._files.append(name)
            self._counts.append(count)
            if count:
                first = float(store.times[0])
                last = float(store.times[-1])
                if last <= self._last_time or first <= self._last_time:
                    raise TraceFormatError(
                        f"{self.directory}: shard file {name!r} is not "
                        "strictly after its predecessors; the directory is "
                        "not a time-ordered shard dir"
                    )
                self._ranges.append([first, last])
                self._last_time = last
                self._committed_s += count
                self._committed_n += store.observation_count
            else:
                self._ranges.append(None)
            if metadata is None:
                self._metadata = file_meta
        if manifest is not None:
            known = set(files)
            for path in sorted(self.directory.glob("shard-*.rtrc*")):
                if path.name not in known and not path.name.endswith(".tmp"):
                    path.unlink()
                    self.recovered_files.append(path.name)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Commit the pending round (if any); idempotent."""
        if self._closed:
            return
        try:
            self.commit()
        finally:
            self._closed = True

    def __enter__(self) -> "RtrcDirAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self.directory}: appender is closed")

    # -- shape ---------------------------------------------------------------

    @property
    def snapshot_count(self) -> int:
        """Snapshots written so far (committed and pending)."""
        return self._committed_s + len(self._pending_times)

    @property
    def observation_count(self) -> int:
        """Observation rows written so far (committed and pending)."""
        return self._committed_n + self._pending_rows

    @property
    def committed_snapshot_count(self) -> int:
        """Snapshots a concurrent reader is guaranteed to see."""
        return self._committed_s

    @property
    def shard_count(self) -> int:
        """Committed round files so far."""
        return len(self._files)

    @property
    def shard_files(self) -> list[str]:
        """Committed round file names, in time order."""
        return list(self._files)

    @property
    def user_count(self) -> int:
        """Distinct users interned so far."""
        return len(self._users)

    @property
    def user_names(self) -> list[str]:
        """Interned user names, indexed by id.  Treat as read-only."""
        return self._users.names

    @property
    def last_time(self) -> float:
        """Timestamp of the newest appended snapshot (-inf when empty)."""
        return self._last_time if not self._pending_times else self._pending_times[-1]

    @property
    def metadata(self) -> TraceMetadata:
        """Trace metadata stamped on round files (assignable)."""
        return self._metadata

    @metadata.setter
    def metadata(self, value: TraceMetadata) -> None:
        self._metadata = value

    # -- appends -------------------------------------------------------------

    def append_snapshot(
        self,
        time: float,
        names: Sequence[str],
        coords: np.ndarray | Sequence[Sequence[float]],
    ) -> None:
        """Buffer one snapshot into the pending round.

        ``time`` must be strictly greater than every earlier snapshot
        in the directory; ``names`` may repeat users across snapshots
        but not within one.  Nothing touches disk until :meth:`commit`.
        """
        self._require_open()
        t = float(time)
        if t <= self.last_time:
            raise ValueError(
                f"snapshot times must be strictly increasing: "
                f"{t} after {self.last_time}"
            )
        rows = len(names)
        block = np.ascontiguousarray(coords, dtype=np.float64).reshape(rows, 3)
        if len(set(names)) != rows:
            seen: set[str] = set()
            for name in names:
                if name in seen:
                    raise ValueError(f"user {name!r} appears twice at t={t}")
                seen.add(name)
        ids = np.fromiter(
            (self._users.intern(name) for name in names),
            dtype=np.int64,
            count=rows,
        )
        self._pending_times.append(t)
        self._pending_ids.append(ids)
        self._pending_xyz.append(block)
        self._pending_rows += rows

    def commit(self) -> Path | None:
        """Publish the pending round as a new shard file.

        The round's snapshots are written as one immutable
        ``shard-*.rtrc`` file (via the usual temp-file + rename), then
        the manifest is atomically swapped to include it — the commit
        point.  A crash in between leaves an orphan file the next
        appender deletes and a manifest that never mentions it, so
        concurrent readers always load a consistent committed prefix.
        Returns the new shard file's path, or ``None`` when nothing
        was pending.

        Raises :class:`~repro.trace.StoreChangedError` when the
        directory's manifest no longer matches the state this appender
        opened with — the signature of a concurrent
        :func:`compact_shard_dir` (generation bump, rewritten file
        list).  Writing this appender's stale manifest would silently
        resurrect the pre-compaction file list (whose files are
        already unlinked) and lose every post-compaction round, so the
        commit refuses instead; re-open the appender over the
        compacted directory to resume.
        """
        self._require_open()
        if not self._pending_times:
            return None
        self._check_not_superseded()
        count = len(self._pending_times)
        times = np.asarray(self._pending_times, dtype=np.float64)
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum([len(ids) for ids in self._pending_ids], out=offsets[1:])
        user_ids = (
            np.concatenate(self._pending_ids)
            if self._pending_rows
            else np.empty(0, dtype=np.int64)
        )
        xyz = (
            np.concatenate(self._pending_xyz)
            if self._pending_rows
            else np.empty((0, 3), dtype=np.float64)
        )
        store = ColumnarStore(times, offsets, user_ids, xyz, self._users)
        name = f"shard-{len(self._files):05d}.rtrc"
        path = write_store_rtrc(store, self._metadata, self.directory / name)
        if self._fsync:
            # The round file's blocks (same inode across the rename)
            # and its directory entry must be durable before the
            # manifest names it, or a power loss could publish a
            # file whose data never reached disk.
            _fsync_path(path)
            _fsync_path(self.directory)
        try:
            # Re-checked after the (slow) round-file write so a
            # compaction landing mid-commit is still caught before the
            # manifest swap publishes stale state; the fresh round
            # file is unlinked rather than left as crash debris.
            self._check_not_superseded()
        except StoreChangedError:
            try:
                path.unlink()
            except OSError:
                pass
            raise
        self._files.append(name)
        self._counts.append(count)
        self._ranges.append([float(times[0]), float(times[-1])])
        self._committed_s += count
        self._committed_n += self._pending_rows
        self._last_time = float(times[-1])
        self._pending_times = []
        self._pending_ids = []
        self._pending_xyz = []
        self._pending_rows = 0
        self._write_manifest()
        return path

    def _check_not_superseded(self) -> None:
        """Refuse to commit over a manifest this appender did not write.

        The appender caches the manifest state it opened with (or last
        wrote); a concurrent :func:`compact_shard_dir` bumps the
        generation and replaces the file list, so committing the
        cached state would atomically *unpublish* the compacted files.
        Comparing generation plus file list catches that (and any
        other external rewrite) at the last moment before the swap.
        """
        manifest = read_shard_manifest(self.directory)
        if manifest is None:
            raise StoreChangedError(
                f"{self.directory}: manifest.json disappeared under the "
                "appender; re-open the appender to resume"
            )
        generation = int(manifest.get("generation", 0))
        files = [str(name) for name in manifest["files"]]
        if generation != self._generation or files != self._files:
            raise StoreChangedError(
                f"{self.directory}: shard directory was compacted (or "
                f"otherwise rewritten) under this appender — manifest is "
                f"at generation {generation} with {len(files)} file(s), "
                f"appender opened at generation {self._generation} with "
                f"{len(self._files)} file(s); re-open the appender over "
                "the compacted directory to resume appending"
            )

    def _write_manifest(self) -> None:
        write_shard_manifest(
            self.directory,
            self._files,
            self._counts,
            self._ranges,
            self._generation,
            fsync=self._fsync,
        )


# -- compaction --------------------------------------------------------------


def compact_shard_dir(
    directory: str | Path,
    shards: int = 1,
    gzip_shards: bool = False,
) -> list[Path]:
    """Fold a shard directory into ``shards`` balanced shard files.

    A long-running :class:`RtrcDirAppender` crawl leaves one small
    file per round; compaction rewrites the directory as an even
    ``shards``-way split (the same partition :func:`to_rtrc_dir`
    produces) while keeping the loaded data **bit-for-bit** identical:
    ``concat_shards(read_rtrc_dir(d))`` returns the same columns and
    the same user table before and after (pinned by
    ``tests/unit/trace/test_compaction.py``).

    The rewrite is crash-consistent: compacted files are written under
    *generation-tagged* names (``shard-00000.g<N>.rtrc``) that no
    previous manifest references, the manifest is then atomically
    swapped to the new file list — the commit point — and only
    afterwards are the old files unlinked.  A crash before the swap
    leaves the directory exactly as it was (plus orphans the next
    appender cleans up); a crash after it leaves a fully valid
    compacted directory plus unlinked-later debris.  Concurrent
    *readers* holding memmaps keep their consistent view (unlink only
    removes the name); do **not** compact while an appender has the
    directory open — the appender caches the manifest it opened with.

    The concatenated store is materialized in memory for the rewrite,
    so compaction currently assumes the directory fits in RAM;
    bounded-memory (group-by-group) compaction is a ROADMAP follow-on.

    Returns the new shard file paths, in time order.
    """
    source = Path(directory)
    manifest = read_shard_manifest(source)
    old_files = list_rtrc_dir(source)
    if not old_files:
        raise TraceFormatError(f"{source}: no shard files found")
    trace = concat_shards(read_rtrc_dir(source, mmap=True))
    generation = (int(manifest.get("generation", 0)) if manifest else 0) + 1
    parts = split_time_shards(trace, shards)
    suffix = ".rtrc.gz" if gzip_shards else ".rtrc"
    names = [
        f"shard-{index:05d}.g{generation}{suffix}" for index in range(len(parts))
    ]
    paths = [
        write_trace_rtrc(part, source / name)
        for part, name in zip(parts, names)
    ]
    write_shard_manifest(
        source,
        names,
        [len(p) for p in parts],
        [[p.start_time, p.end_time] if len(p) else None for p in parts],
        generation,
    )
    survivors = set(names)
    for name in old_files:
        if name not in survivors:
            try:
                (source / name).unlink()
            except FileNotFoundError:
                pass
    return paths
