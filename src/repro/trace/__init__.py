"""Mobility-trace data model and I/O.

A *trace* is what the paper's crawler produces: a time-ordered sequence
of snapshots, each mapping every connected user to a land-relative
position.  The analysis layer (:mod:`repro.core`) consumes traces
without caring whether they came from the simulator, from the virtual
sensor network, from a file, or from a real 2008 crawl — the record
format is plain ``(t, user, x, y, z)``.
"""

from repro.trace.columnar import (
    ColumnarBuilder,
    ColumnarStore,
    UserInterner,
    store_from_records,
)
from repro.trace.records import PositionRecord, Snapshot
from repro.trace.trace import Trace, TraceMetadata
from repro.trace.storage import (
    RtrcAppender,
    RtrcFormatError,
    StoreChangedError,
    StoreInUseError,
    TraceFormatError,
    compact_rtrc_store,
    read_rtrc_header,
    read_store_rtrc,
    read_trace_rtrc,
    write_store_rtrc,
    write_trace_rtrc,
)
from repro.trace.io import (
    read_trace,
    read_trace_csv,
    read_trace_jsonl,
    trace_format,
    write_trace,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.sharding import (
    CompactionPolicy,
    RtrcDirAppender,
    compact_shard_dir,
    concat_shards,
    concat_stores,
    list_rtrc_dir,
    read_rtrc_dir,
    read_shard_manifest,
    retain_shard_dir,
    shard_dir_generation,
    shard_dir_slack,
    shard_edges,
    split_time_shards,
    tier_shard_dir,
    to_rtrc_dir,
)
from repro.trace.sessions import (
    SessionSet,
    UserSession,
    extract_session_set,
    extract_sessions,
    extract_sessions_loop,
)
from repro.trace.validation import TraceIssue, validate_trace
from repro.trace.synth import (
    constant_positions_trace,
    crossing_users_trace,
    metaverse_trace,
    orbiting_users_trace,
    random_walk_trace,
)

__all__ = [
    "ColumnarBuilder",
    "ColumnarStore",
    "UserInterner",
    "store_from_records",
    "PositionRecord",
    "Snapshot",
    "Trace",
    "TraceMetadata",
    "RtrcAppender",
    "RtrcFormatError",
    "StoreChangedError",
    "StoreInUseError",
    "TraceFormatError",
    "compact_rtrc_store",
    "read_rtrc_header",
    "read_store_rtrc",
    "read_trace_rtrc",
    "write_store_rtrc",
    "write_trace_rtrc",
    "read_trace",
    "read_trace_csv",
    "read_trace_jsonl",
    "trace_format",
    "write_trace",
    "write_trace_csv",
    "write_trace_jsonl",
    "CompactionPolicy",
    "RtrcDirAppender",
    "compact_shard_dir",
    "concat_shards",
    "concat_stores",
    "list_rtrc_dir",
    "read_rtrc_dir",
    "read_shard_manifest",
    "retain_shard_dir",
    "shard_dir_generation",
    "shard_dir_slack",
    "shard_edges",
    "split_time_shards",
    "tier_shard_dir",
    "to_rtrc_dir",
    "SessionSet",
    "UserSession",
    "extract_session_set",
    "extract_sessions",
    "extract_sessions_loop",
    "TraceIssue",
    "validate_trace",
    "constant_positions_trace",
    "metaverse_trace",
    "crossing_users_trace",
    "orbiting_users_trace",
    "random_walk_trace",
]
