"""Trace sanity checks.

Real measurement campaigns fail in mundane ways — crawler restarts,
clock jumps, avatars reported at the origin while seated, coordinates
overshooting the land during teleports.  ``validate_trace`` surfaces
all of them as structured issues instead of letting them silently skew
CCDFs downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceIssue:
    """One finding of the validator."""

    severity: str  # "error" or "warning"
    code: str
    time: float | None
    user: str | None
    message: str

    def __str__(self) -> str:
        location = []
        if self.time is not None:
            location.append(f"t={self.time:g}")
        if self.user is not None:
            location.append(f"user={self.user}")
        where = f" [{', '.join(location)}]" if location else ""
        return f"{self.severity.upper()} {self.code}{where}: {self.message}"


def validate_trace(
    trace: Trace,
    check_bounds: bool = True,
    check_gaps: bool = True,
    gap_factor: float = 3.0,
) -> list[TraceIssue]:
    """Run all checks and return the issues found (empty = clean).

    Checks, in order:

    * ``empty-trace`` — no snapshots at all (error);
    * ``sampling-gap`` — consecutive snapshots further apart than
      ``gap_factor * tau`` (warning: the monitor lost coverage);
    * ``out-of-bounds`` — coordinates outside the land footprint
      (warning: teleport overshoot or mis-declared land size);
    * ``sitting-artifact`` — exact-origin positions, the SL sit quirk
      (warning: trip metrics for that user are unreliable);
    * ``empty-snapshot`` — a snapshot with zero users (informational
      warning; legitimate on a deserted land, suspicious on a busy one).
    """
    issues = list(
        _iter_issues(trace, check_bounds=check_bounds, check_gaps=check_gaps, gap_factor=gap_factor)
    )
    return issues


def _iter_issues(
    trace: Trace,
    check_bounds: bool,
    check_gaps: bool,
    gap_factor: float,
) -> Iterator[TraceIssue]:
    if trace.is_empty:
        yield TraceIssue("error", "empty-trace", None, None, "trace has no snapshots")
        return

    meta = trace.metadata
    previous_time: float | None = None
    for snapshot in trace:
        if check_gaps and previous_time is not None:
            gap = snapshot.time - previous_time
            if gap > gap_factor * meta.tau:
                yield TraceIssue(
                    "warning",
                    "sampling-gap",
                    snapshot.time,
                    None,
                    f"{gap:.0f}s since previous snapshot "
                    f"(expected ~{meta.tau:.0f}s; monitor outage?)",
                )
        previous_time = snapshot.time

        if len(snapshot) == 0:
            yield TraceIssue(
                "warning", "empty-snapshot", snapshot.time, None, "no users observed"
            )
        for user, pos in snapshot.positions.items():
            if pos.is_origin():
                yield TraceIssue(
                    "warning",
                    "sitting-artifact",
                    snapshot.time,
                    user,
                    "position is exactly {0,0,0} — SL reports seated avatars "
                    "at the origin; trip metrics for this user are unreliable",
                )
            elif check_bounds and not (
                0.0 <= pos.x <= meta.width and 0.0 <= pos.y <= meta.height
            ):
                yield TraceIssue(
                    "warning",
                    "out-of-bounds",
                    snapshot.time,
                    user,
                    f"position ({pos.x:.1f}, {pos.y:.1f}) outside "
                    f"{meta.width:.0f}x{meta.height:.0f}m land",
                )
