"""Binary on-disk columnar trace format (``.rtrc``) with memmap loading.

The CSV/JSONL formats re-parse every observation on every load, which
dominates repeated-analysis workloads (the paper's sweeps re-read the
same crawled traces many times).  ``.rtrc`` stores the four columnar
arrays of a :class:`~repro.trace.columnar.ColumnarStore` as raw
little-endian sections behind a JSON header, so loading is a handful
of ``np.memmap`` calls — zero parsing, zero copying, lazy paging.

Layout (all integers little-endian)::

    offset 0   magic          b"RTRC"
    offset 4   version        uint16 (currently 1)
    offset 6   reserved       uint16 (zero)
    offset 8   header_length  uint64 — byte length of the JSON header
    offset 16  header         UTF-8 JSON (see below)
    ...        zero padding to a 64-byte boundary
    data       raw array sections, each 64-byte aligned

The JSON header carries the trace metadata, the interner's user names
(index = interned id) and a section table::

    {"metadata": {...TraceMetadata fields...},
     "users": ["name0", "name1", ...],
     "sections": {"times":            {"dtype": "<f8", "shape": [S],     "offset": 0,   "nbytes": ...},
                  "snapshot_offsets": {"dtype": "<i8", "shape": [S + 1], "offset": ..., "nbytes": ...},
                  "user_ids":         {"dtype": "<i8", "shape": [N],     "offset": ..., "nbytes": ...},
                  "xyz":              {"dtype": "<f8", "shape": [N, 3],  "offset": ..., "nbytes": ...}}}

Section offsets are relative to the start of the (aligned) data
region, so the header can be serialized without a fix-point iteration.

A ``.rtrc.gz`` suffix gzips the same byte stream; compressed files
cannot be memory-mapped and are loaded in memory instead.

Appendable stores
-----------------

:class:`RtrcAppender` grows an ``.rtrc`` file snapshot by snapshot —
the streaming-crawler workload — while keeping it readable by the
plain loaders at every commit point.  Appendable files use the same
preamble/header/section vocabulary with two relaxations readers
already tolerate:

* the JSON header is padded with trailing spaces to a fixed *reserve*
  (``header_length`` in the preamble names the reserved size), so the
  data region never moves when the header is rewritten;
* each section sits at a fixed offset with reserved *capacity* beyond
  its committed shape (recorded under the header's ``"append"`` key,
  which plain readers ignore), so appended rows land in pre-assigned
  space instead of shifting later sections.

An append writes the new rows into the sections' tails first and only
then rewrites the header in place with the grown shapes (the commit
point).  A reader therefore always sees a consistent prefix: either
the old header (whose sections were fully written long ago) or the new
one (whose rows were written before the header).  A crash between the
two leaves a *torn append* — bytes beyond the committed shapes — which
reopening detects and truncates away.  When a capacity or the header
reserve overflows, the whole file is rewritten (doubled) through the
same temp-file-plus-rename dance :func:`write_store_rtrc` uses.
"""

from __future__ import annotations

import gzip
import json
import os
import struct
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import BinaryIO, Sequence

import numpy as np

try:  # advisory writer locks; absent on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only dev/CI environments
    fcntl = None  # type: ignore[assignment]

from repro.trace.columnar import ColumnarStore, UserInterner
from repro.trace.trace import Trace, TraceMetadata

#: File magic of the rtrc format.
MAGIC = b"RTRC"

#: Current format version.
VERSION = 1

#: Alignment (bytes) of the data region and of every section.
ALIGNMENT = 64

#: Fixed-size preamble: magic + version + reserved + header length.
_PREAMBLE = struct.Struct("<4sHHQ")

#: Section order and dtypes; the columnar layout pinned on disk.
_SECTION_DTYPES = (
    ("times", "<f8"),
    ("snapshot_offsets", "<i8"),
    ("user_ids", "<i8"),
    ("xyz", "<f8"),
)

_METADATA_FIELDS = tuple(f.name for f in fields(TraceMetadata))

#: Scalars per observation row in each section (xyz rows are 3-vectors).
_ROW_WIDTH = {"times": 1, "snapshot_offsets": 1, "user_ids": 1, "xyz": 3}

#: Per-row byte widths, derived from the pinned section dtypes.
_ROW_NBYTES = {
    name: np.dtype(dtype).itemsize * _ROW_WIDTH[name]
    for name, dtype in _SECTION_DTYPES
}

#: Smallest snapshot-slot capacity an appendable store reserves.
MIN_SNAPSHOT_CAPACITY = 64

#: Smallest observation-row capacity an appendable store reserves.
MIN_OBSERVATION_CAPACITY = 1024

#: Smallest header reserve (bytes) of an appendable store.
MIN_HEADER_RESERVE = 4096


class TraceFormatError(ValueError):
    """A trace file is unreadable: wrong format, corrupt, or truncated.

    Base class for format-specific errors so callers can catch one
    exception across every on-disk representation.
    """


class RtrcFormatError(TraceFormatError):
    """Raised when a file is not a readable rtrc trace."""


class StoreInUseError(ValueError):
    """A destructive store operation raced a live writer.

    Raised when :func:`compact_rtrc_store` finds the target store
    locked by a live :class:`RtrcAppender` (and vice versa: a second
    appender opening an already-appended store).  Compacting under a
    live appender would atomically swap a new inode into the path
    while the appender keeps writing to the old, now-invisible file —
    every round after the compaction would silently vanish.  The lock
    is advisory (``flock``), held for the appender's whole lifetime,
    and detection degrades to a no-op on platforms without ``fcntl``.
    """


class StoreChangedError(ValueError):
    """A live store broke the append-only contract under its holder.

    Raised in two places that share one failure shape: a
    :class:`~repro.core.live.LiveAnalyzer` follower whose store
    shrank, rewrote its committed prefix, or swapped its shard-file
    list; and an :class:`~repro.trace.RtrcDirAppender` whose directory
    was compacted (generation bumped) between open and commit.  In
    both cases the on-disk store is still internally consistent —
    only *this holder's* in-memory history is stale — so long-running
    consumers (the CLI ``--follow`` loop, the query service) catch
    this specifically and recover by re-opening a fresh follower or
    appender instead of dying.
    """


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _is_gzip(path: Path) -> bool:
    return path.suffix == ".gz"


def _section_arrays(store: ColumnarStore) -> dict[str, np.ndarray]:
    arrays = {
        "times": store.times,
        "snapshot_offsets": store.snapshot_offsets,
        "user_ids": store.user_ids,
        "xyz": store.xyz,
    }
    return {
        name: np.ascontiguousarray(arrays[name]).astype(dtype, copy=False)
        for name, dtype in _SECTION_DTYPES
    }


def _write_stream(handle: BinaryIO, store: ColumnarStore, metadata: TraceMetadata) -> None:
    arrays = _section_arrays(store)
    sections: dict[str, dict[str, object]] = {}
    cursor = 0
    for name, dtype in _SECTION_DTYPES:
        offset = _align(cursor)
        arr = arrays[name]
        sections[name] = {
            "dtype": dtype,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": arr.nbytes,
        }
        cursor = offset + arr.nbytes
    header = {
        "metadata": {name: getattr(metadata, name) for name in _METADATA_FIELDS},
        "users": list(store.users.names),
        "sections": sections,
    }
    header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(header_bytes))
    handle.write(_PREAMBLE.pack(MAGIC, VERSION, 0, len(header_bytes)))
    handle.write(header_bytes)
    handle.write(b"\0" * (data_start - _PREAMBLE.size - len(header_bytes)))
    cursor = 0
    for name, _ in _SECTION_DTYPES:
        offset = int(sections[name]["offset"])  # type: ignore[arg-type]
        handle.write(b"\0" * (offset - cursor))
        payload = arrays[name].tobytes()
        handle.write(payload)
        cursor = offset + len(payload)


def write_trace_rtrc(trace: Trace, path: str | Path) -> Path:
    """Write a trace in the binary columnar format; returns the path."""
    return write_store_rtrc(trace.columns, trace.metadata, path)


def write_store_rtrc(
    store: ColumnarStore,
    metadata: TraceMetadata,
    path: str | Path,
) -> Path:
    """Write a bare columnar store (plus metadata) as ``.rtrc``.

    The write goes to a temporary sibling file and is renamed into
    place: a memmap-backed store may be *reading* the target file, so
    truncating it in place would fault the still-mapped pages mid
    serialization (and a crash mid-write would corrupt the old data).
    """
    target = Path(path)
    fd, tmp_name = _tempfile_for(target)
    try:
        with os.fdopen(fd, "wb") as raw:
            if _is_gzip(target):
                with gzip.open(raw, "wb") as handle:
                    _write_stream(handle, store, metadata)
            else:
                _write_stream(raw, store, metadata)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def _tempfile_for(target: Path) -> tuple[int, str]:
    """A sibling temp file destined to be renamed onto ``target``.

    mkstemp creates 0600 files; the mode is widened to match what a
    plain ``open()`` under the caller's umask would have produced, so
    the rename does not silently tighten permissions.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    umask = os.umask(0)
    os.umask(umask)
    os.fchmod(fd, 0o666 & ~umask)
    return fd, tmp_name


def _parse_preamble(raw: bytes, path: Path) -> tuple[int, int]:
    """Validate the fixed preamble; returns ``(header_length, data_start)``."""
    if len(raw) < _PREAMBLE.size:
        raise RtrcFormatError(f"{path}: truncated rtrc file ({len(raw)} bytes)")
    magic, version, _reserved, header_length = _PREAMBLE.unpack_from(raw)
    if magic != MAGIC:
        raise RtrcFormatError(f"{path}: bad magic {magic!r}; not an rtrc trace")
    if version != VERSION:
        raise RtrcFormatError(
            f"{path}: unsupported rtrc version {version} (reader speaks {VERSION})"
        )
    return int(header_length), _align(_PREAMBLE.size + int(header_length))


def _parse_header(payload: bytes, path: Path) -> dict:
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RtrcFormatError(f"{path}: corrupt rtrc header ({exc})") from exc
    if not isinstance(header, dict):
        raise RtrcFormatError(f"{path}: rtrc header is not a JSON object")
    for key in ("metadata", "users", "sections"):
        if key not in header:
            raise RtrcFormatError(f"{path}: rtrc header misses {key!r}")
    missing = [name for name, _ in _SECTION_DTYPES if name not in header["sections"]]
    if missing:
        raise RtrcFormatError(f"{path}: rtrc header misses sections {missing}")
    for name, dtype in _SECTION_DTYPES:
        _validate_section_spec(header["sections"][name], name, np.dtype(dtype), path)
    return header


def _validate_section_spec(
    spec: object, name: str, dtype: np.dtype, path: Path
) -> None:
    """Reject malformed or internally inconsistent section tables.

    Everything the loaders later trust — integer offsets, a sane shape,
    and ``nbytes`` matching ``shape`` — is checked here so corruption
    surfaces as an :class:`RtrcFormatError` naming the section, never
    as a numpy reshape/memmap traceback deep in the load.
    """
    if not isinstance(spec, dict):
        raise RtrcFormatError(f"{path}: section {name!r} is not an object")
    for key in ("shape", "offset", "nbytes"):
        if key not in spec:
            raise RtrcFormatError(f"{path}: section {name!r} misses {key!r}")
    shape = spec["shape"]
    if not isinstance(shape, list) or not all(
        isinstance(v, int) and v >= 0 for v in shape
    ):
        raise RtrcFormatError(
            f"{path}: section {name!r} has invalid shape {shape!r}"
        )
    offset, nbytes = spec["offset"], spec["nbytes"]
    if not isinstance(offset, int) or offset < 0 or offset % ALIGNMENT != 0:
        raise RtrcFormatError(
            f"{path}: section {name!r} has invalid offset {offset!r}"
        )
    if not isinstance(nbytes, int) or nbytes < 0:
        raise RtrcFormatError(
            f"{path}: section {name!r} has invalid nbytes {nbytes!r}"
        )
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if nbytes != expected:
        raise RtrcFormatError(
            f"{path}: section {name!r} length mismatch — shape {shape} "
            f"needs {expected} bytes, header claims {nbytes}"
        )


def _store_from_sections(
    header: dict,
    load_section,
    path: Path,
) -> tuple[ColumnarStore, TraceMetadata]:
    arrays = {}
    for name, dtype in _SECTION_DTYPES:
        spec = header["sections"][name]
        shape = tuple(int(v) for v in spec["shape"])
        arrays[name] = load_section(spec, np.dtype(dtype), shape)
    try:
        metadata = TraceMetadata(**header["metadata"])
    except (TypeError, ValueError) as exc:
        raise RtrcFormatError(f"{path}: invalid rtrc metadata ({exc})") from exc
    try:
        store = ColumnarStore(
            arrays["times"],
            arrays["snapshot_offsets"],
            arrays["user_ids"],
            arrays["xyz"],
            UserInterner(header["users"]),
        )
    except (TypeError, ValueError) as exc:
        raise RtrcFormatError(
            f"{path}: rtrc sections do not form a valid trace ({exc})"
        ) from exc
    return store, metadata


def read_store_rtrc(
    path: str | Path,
    mmap: bool = True,
) -> tuple[ColumnarStore, TraceMetadata]:
    """Load the columnar store and metadata of an ``.rtrc`` file.

    With ``mmap`` (the default, plain files only) the arrays are
    ``np.memmap``-backed read-only views: nothing is parsed or copied,
    and pages fault in lazily as the analysis touches them.  Gzipped
    files fall back to an in-memory load.
    """
    source = Path(path)
    if _is_gzip(source):
        with gzip.open(source, "rb") as handle:
            raw = handle.read()
        return _read_buffer(raw, source)
    if not mmap:
        return _read_buffer(source.read_bytes(), source)

    file_size = source.stat().st_size
    with open(source, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        header_length, data_start = _parse_preamble(preamble, source)
        if _PREAMBLE.size + header_length > file_size:
            raise RtrcFormatError(
                f"{source}: truncated rtrc file — header claims "
                f"{header_length} bytes, file has {file_size}"
            )
        header = _parse_header(handle.read(header_length), source)

    def load_section(spec: dict, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        nbytes = int(spec["nbytes"])
        if nbytes == 0:
            return np.empty(shape, dtype=dtype)
        end = data_start + int(spec["offset"]) + nbytes
        if end > file_size:
            raise RtrcFormatError(
                f"{source}: truncated rtrc file — section needs bytes up to "
                f"{end}, file has {file_size}"
            )
        return np.memmap(
            source,
            dtype=dtype,
            mode="r",
            offset=data_start + int(spec["offset"]),
            shape=shape,
        )

    return _store_from_sections(header, load_section, source)


def _read_buffer(raw: bytes, path: Path) -> tuple[ColumnarStore, TraceMetadata]:
    header_length, data_start = _parse_preamble(raw, path)
    if _PREAMBLE.size + header_length > len(raw):
        raise RtrcFormatError(
            f"{path}: truncated rtrc file — header claims {header_length} "
            f"bytes, buffer has {len(raw)}"
        )
    header = _parse_header(raw[_PREAMBLE.size:_PREAMBLE.size + header_length], path)

    def load_section(spec: dict, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        nbytes = int(spec["nbytes"])
        if nbytes == 0:
            return np.empty(shape, dtype=dtype)
        start = data_start + int(spec["offset"])
        if start + nbytes > len(raw):
            raise RtrcFormatError(
                f"{path}: truncated rtrc file — section needs bytes up to "
                f"{start + nbytes}, buffer has {len(raw)}"
            )
        return np.frombuffer(
            raw, dtype=dtype, count=int(np.prod(shape)), offset=start
        ).reshape(shape)

    return _store_from_sections(header, load_section, path)


def read_trace_rtrc(path: str | Path, mmap: bool = True) -> Trace:
    """Read a trace written by :func:`write_trace_rtrc`."""
    store, metadata = read_store_rtrc(path, mmap=mmap)
    return Trace.from_columns(store, metadata)


def read_rtrc_header(path: str | Path) -> dict:
    """Parse just the preamble and JSON header of an ``.rtrc`` file.

    Shapes, user table and metadata without touching a single data
    page — the storage-lifecycle bookkeeping (slack accounting, row
    counts after a retention pass) needs exactly this.  Works on
    ``.rtrc.gz`` too: gzip decompresses lazily, so only the blocks
    holding the header are inflated, not the sections.
    """
    source = Path(path)
    opener = gzip.open(source, "rb") if _is_gzip(source) else open(source, "rb")
    with opener as handle:
        preamble = handle.read(_PREAMBLE.size)
        header_length, _ = _parse_preamble(preamble, source)
        payload = handle.read(header_length)
        if len(payload) < header_length:
            raise RtrcFormatError(
                f"{source}: truncated rtrc file — header claims "
                f"{header_length} bytes, file ends early"
            )
        return _parse_header(payload, source)


def compact_rtrc_store(path: str | Path) -> tuple[Path, int]:
    """Rewrite an ``.rtrc`` file tightly, dropping append slack.

    An appendable store (:class:`RtrcAppender`) reserves section
    capacity and header padding so appends never move data; a finished
    crawl therefore carries dead bytes — up to half the file right
    after a capacity doubling.  Compaction rewrites the committed
    prefix as a tightly packed one-shot file through the usual
    temp-file + atomic-rename dance, so concurrent memmap readers keep
    their consistent view of the old inode and a crash leaves the
    original untouched.  (The next open-for-append simply converts the
    file back to the appendable layout.)

    Returns ``(path, bytes_reclaimed)``; gzipped stores are rejected —
    they carry no slack to trim.

    A store a live :class:`RtrcAppender` has open cannot be compacted:
    the rename would swap a new inode into the path, so the appender
    would keep writing to the old, now-invisible file and every round
    after the compaction would silently vanish.  The appender holds an
    advisory ``flock`` on its store for exactly this reason, and this
    function probes it — a locked store raises
    :class:`StoreInUseError` instead of orphaning the appender's
    inode.  (On platforms without ``fcntl`` the probe is a no-op and
    the old compact-finished-crawls-only rule is on the caller.)
    """
    source = Path(path)
    if _is_gzip(source):
        raise ValueError(
            f"{source}: gzipped rtrc stores have no append slack to compact"
        )
    guard = open(source, "rb")
    try:
        if fcntl is not None:
            try:
                fcntl.flock(guard.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                raise StoreInUseError(
                    f"{source}: a live RtrcAppender holds this store open; "
                    "compacting now would orphan its inode and silently "
                    "drop every later round — close the appender first"
                ) from exc
        before = source.stat().st_size
        store, metadata = read_store_rtrc(source, mmap=True)
        write_store_rtrc(store, metadata, source)
    finally:
        # Releasing the guard also releases the flock; it was held
        # across the rename so no appender could open the old inode
        # mid-compaction.
        guard.close()
    return source, before - source.stat().st_size


# -- appendable stores ------------------------------------------------------


def _capacity_layout(cap_s: int, cap_n: int) -> tuple[dict[str, int], int]:
    """Section offsets of an appendable store — ``({name: offset}, end)``.

    Each section is placed at the 64-byte boundary after the previous
    section's *capacity* (not its committed shape), so committed rows
    never move while appends fill the reserved space.
    """
    capacities = {
        "times": cap_s * _ROW_NBYTES["times"],
        "snapshot_offsets": (cap_s + 1) * _ROW_NBYTES["snapshot_offsets"],
        "user_ids": cap_n * _ROW_NBYTES["user_ids"],
        "xyz": cap_n * _ROW_NBYTES["xyz"],
    }
    offsets: dict[str, int] = {}
    cursor = 0
    for name, _ in _SECTION_DTYPES:
        offsets[name] = _align(cursor)
        cursor = offsets[name] + capacities[name]
    return offsets, cursor


def _grow_capacity(current: int, needed: int, minimum: int) -> int:
    """Geometric (doubling) capacity growth covering ``needed`` rows."""
    cap = max(current, minimum, 1)
    while cap < needed:
        cap *= 2
    return cap


class RtrcAppender:
    """Append snapshots to an ``.rtrc`` store with crash-safe commits.

    This is the streaming-ingestion counterpart of
    :func:`write_trace_rtrc`: a crawler hands over snapshots as they
    are observed and the store grows on disk instead of buffering the
    whole trace in RAM.  The file stays loadable by
    :func:`read_trace_rtrc` / :func:`read_store_rtrc` (memmap
    included) at every commit point, and the committed prefix is
    bit-for-bit identical to the same snapshots written in one shot.

    Parameters
    ----------
    path:
        The store to create or extend.  An existing one-shot ``.rtrc``
        file is converted to the appendable layout (capacity headroom
        plus a padded header reserve) on open; gzipped stores are
        rejected — gzip streams cannot be extended in place.
    metadata:
        Trace metadata for a newly created store, or an override for
        an existing one (written at the next commit).  When omitted,
        an existing store keeps its header metadata and a new store
        starts with the :class:`~repro.trace.TraceMetadata` defaults;
        the :attr:`metadata` property can be assigned any time before
        the final commit (monitors learn the land only on attach).
    snapshot_capacity / observation_capacity:
        Initial row capacities.  Capacities only set where the next
        whole-file rewrite happens — exceeding one doubles it — so the
        defaults are fine outside tests, which use tiny values to
        exercise the growth path.
    header_reserve:
        Initial byte reserve for the JSON header (user table +
        section shapes).  Grows like the capacities.
    fsync:
        When True every commit fsyncs data before and after the
        header rewrite, making the commit point durable against power
        loss, not just process crash.  Off by default: the paper's
        crawl loop favours throughput, and a torn append is recovered
        on reopen either way.

    Crash safety
    ------------
    ``append_snapshot`` writes rows into the sections' reserved tails;
    ``commit`` rewrites the JSON header in place with the grown
    shapes.  The header rewrite is the commit point: a crash before it
    leaves the old header describing the old, fully-written prefix,
    and the torn row bytes beyond it are detected and truncated away
    on the next open (:attr:`recovered_bytes`).  Readers that memmap
    the file concurrently see a consistent committed prefix for the
    same reason — appends only touch bytes beyond every committed
    section shape.

    Lifecycle
    ---------
    ``close()`` commits pending appends and releases the file handle;
    the appender is unusable afterwards.  Use as a context manager::

        with RtrcAppender("crawl.rtrc", metadata=meta) as out:
            for time, names, coords in observations:
                out.append_snapshot(time, names, coords)
                out.commit()   # durable point, e.g. once per round
    """

    def __init__(
        self,
        path: str | Path,
        metadata: TraceMetadata | None = None,
        *,
        snapshot_capacity: int = MIN_SNAPSHOT_CAPACITY,
        observation_capacity: int = MIN_OBSERVATION_CAPACITY,
        header_reserve: int = MIN_HEADER_RESERVE,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        if _is_gzip(self.path):
            raise ValueError(
                f"{self.path}: cannot append to a gzipped rtrc store — "
                "gzip streams are not extendable in place; append to the "
                "plain .rtrc and compress afterwards"
            )
        if min(snapshot_capacity, observation_capacity, header_reserve) < 1:
            raise ValueError("capacities and header reserve must be positive")
        self._min_cap_s = int(snapshot_capacity)
        self._min_cap_n = int(observation_capacity)
        self._min_reserve = int(header_reserve)
        self._fsync = bool(fsync)
        self._fh: BinaryIO | None = None
        #: Torn-append bytes discarded while opening an existing store.
        self.recovered_bytes = 0
        self._users = UserInterner()
        self._metadata = metadata if metadata is not None else TraceMetadata()
        self._meta_dirty = False
        self._s = 0  # written snapshots (committed + pending)
        self._n = 0  # written observation rows
        self._committed_s = 0
        self._committed_n = 0
        self._last_time = float("-inf")
        if self.path.exists():
            self._open_existing(metadata)
        else:
            self._create()

    # -- construction -------------------------------------------------------

    def _create(self) -> None:
        cap_s = _grow_capacity(0, 0, self._min_cap_s)
        cap_n = _grow_capacity(0, 0, self._min_cap_n)
        self._adopt_layout(cap_s, cap_n, self._min_reserve)
        header = self._header_bytes()
        if len(header) > self._reserve:
            self._adopt_layout(cap_s, cap_n, _align(2 * len(header)))
            header = self._header_bytes()
        fd, tmp_name = _tempfile_for(self.path)
        try:
            with os.fdopen(fd, "wb") as handle:
                self._write_image(handle, header)
                self._sync_handle(handle)
            os.replace(tmp_name, self.path)
            self._sync_directory()
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._fh = self._locked_open()

    def _locked_open(self) -> BinaryIO:
        """Open the store read-write and take the advisory writer lock.

        The non-blocking exclusive ``flock`` marks this appender as the
        store's single writer: a second appender on the same path, or a
        :func:`compact_rtrc_store` racing the crawl, fails with a typed
        :class:`StoreInUseError` instead of silently orphaning this
        appender's inode.  The lock rides the handle — closing the
        appender (or a rewrite swapping handles) releases it.
        """
        fh = open(self.path, "r+b")
        if fcntl is not None:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                fh.close()
                raise StoreInUseError(
                    f"{self.path}: another writer holds this store open "
                    "(a live RtrcAppender, or a compaction in progress); "
                    "an rtrc store has exactly one writer at a time"
                ) from exc
        return fh

    def _sync_handle(self, handle: BinaryIO) -> None:
        if self._fsync:
            handle.flush()
            os.fsync(handle.fileno())

    def _sync_directory(self) -> None:
        """Make a rename durable: fsync the containing directory."""
        if not self._fsync:
            return
        fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _open_existing(self, metadata: TraceMetadata | None) -> None:
        size = self.path.stat().st_size
        with open(self.path, "rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            header_length, data_start = _parse_preamble(preamble, self.path)
            if _PREAMBLE.size + header_length > size:
                raise RtrcFormatError(
                    f"{self.path}: truncated rtrc file — header claims "
                    f"{header_length} bytes, file has {size}"
                )
            header = _parse_header(handle.read(header_length), self.path)
        try:
            file_meta = TraceMetadata(**header["metadata"])
        except (TypeError, ValueError) as exc:
            raise RtrcFormatError(
                f"{self.path}: invalid rtrc metadata ({exc})"
            ) from exc
        self._metadata = metadata if metadata is not None else file_meta
        self._meta_dirty = metadata is not None and metadata != file_meta
        self._users = UserInterner(header["users"])
        sections = header["sections"]
        s = int(sections["times"]["shape"][0])
        n = int(sections["user_ids"]["shape"][0])
        append_info = header.get("append")
        if self._adoptable(append_info, sections, s, n):
            cap_s = int(append_info["snapshot_capacity"])
            cap_n = int(append_info["observation_capacity"])
            self._adopt_layout(cap_s, cap_n, header_length)
            # The committed sections must actually be on disk — a file
            # truncated below them (bad copy, disk trouble) is corrupt,
            # not a recoverable torn append.
            required_end = self._data_start + (
                self._offsets["xyz"] + n * _ROW_NBYTES["xyz"]
                if n
                else self._offsets["snapshot_offsets"]
                + (s + 1) * _ROW_NBYTES["snapshot_offsets"]
            )
            if size < required_end:
                raise RtrcFormatError(
                    f"{self.path}: truncated rtrc file — committed sections "
                    f"need bytes up to {required_end}, file has {size}"
                )
            self._s = self._committed_s = s
            self._n = self._committed_n = n
            self._last_time = self._read_last_time()
            self._fh = self._locked_open()
            self._truncate_torn_tail(size)
        else:
            # A tightly-packed one-shot file (or a foreign layout):
            # convert by rewriting with capacity headroom.
            store, _ = read_store_rtrc(self.path, mmap=True)
            self._s = s
            self._n = n
            self._last_time = float(store.times[-1]) if s else float("-inf")
            self._rewrite(
                (store.times, store.snapshot_offsets, store.user_ids, store.xyz),
                _grow_capacity(0, s + 1, self._min_cap_s),
                _grow_capacity(0, n + 1, self._min_cap_n),
                max(self._min_reserve, _align(2 * header_length)),
            )

    def _adoptable(
        self, append_info: object, sections: dict, s: int, n: int
    ) -> bool:
        """Whether the on-disk layout already is our appendable layout."""
        if not isinstance(append_info, dict):
            return False
        try:
            cap_s = int(append_info["snapshot_capacity"])
            cap_n = int(append_info["observation_capacity"])
        except (KeyError, TypeError, ValueError):
            return False
        if cap_s < s or cap_n < n:
            return False
        offsets, _ = _capacity_layout(cap_s, cap_n)
        return all(
            int(sections[name]["offset"]) == offsets[name]
            for name, _ in _SECTION_DTYPES
        )

    def _adopt_layout(self, cap_s: int, cap_n: int, reserve: int) -> None:
        self._cap_s = cap_s
        self._cap_n = cap_n
        self._reserve = reserve
        self._offsets, _ = _capacity_layout(cap_s, cap_n)
        self._data_start = _align(_PREAMBLE.size + reserve)

    def _read_last_time(self) -> float:
        if not self._s:
            return float("-inf")
        with open(self.path, "rb") as handle:
            handle.seek(
                self._data_start
                + self._offsets["times"]
                + (self._s - 1) * _ROW_NBYTES["times"]
            )
            return float(np.frombuffer(handle.read(8), dtype="<f8")[0])

    def _truncate_torn_tail(self, size: int) -> None:
        """Discard bytes a crashed, uncommitted append left behind.

        ``xyz`` is the last section, so the last byte any *committed*
        state can own is its committed end; anything beyond was
        written after the last header commit and is not part of the
        store.
        """
        committed_end = (
            self._data_start
            + self._offsets["xyz"]
            + self._committed_n * _ROW_NBYTES["xyz"]
        )
        if size > committed_end:
            os.truncate(self.path, committed_end)
            self.recovered_bytes = size - committed_end

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Commit pending appends and release the file handle (idempotent)."""
        if self._fh is None:
            return
        try:
            self.commit()
        finally:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RtrcAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> BinaryIO:
        if self._fh is None:
            raise ValueError(f"{self.path}: appender is closed")
        return self._fh

    # -- shape --------------------------------------------------------------

    @property
    def snapshot_count(self) -> int:
        """Snapshots written so far (committed and pending)."""
        return self._s

    @property
    def observation_count(self) -> int:
        """Observation rows written so far (committed and pending)."""
        return self._n

    @property
    def committed_snapshot_count(self) -> int:
        """Snapshots a concurrent reader is guaranteed to see."""
        return self._committed_s

    @property
    def user_count(self) -> int:
        """Distinct users interned so far."""
        return len(self._users)

    @property
    def user_names(self) -> list[str]:
        """Interned user names, indexed by id.  Treat as read-only."""
        return self._users.names

    @property
    def last_time(self) -> float:
        """Timestamp of the newest appended snapshot (-inf when empty)."""
        return self._last_time

    @property
    def metadata(self) -> TraceMetadata:
        """Trace metadata written at the next commit (assignable)."""
        return self._metadata

    @metadata.setter
    def metadata(self, value: TraceMetadata) -> None:
        if value != self._metadata:
            self._metadata = value
            self._meta_dirty = True

    # -- appends ------------------------------------------------------------

    def append_snapshot(
        self,
        time: float,
        names: Sequence[str],
        coords: np.ndarray | Sequence[Sequence[float]],
    ) -> None:
        """Write one snapshot's rows into the store's reserved tail.

        ``time`` must be strictly greater than the previous snapshot's;
        ``names`` may repeat users across snapshots (ids are interned)
        but not within one.  The rows are on disk when this returns but
        only become visible to readers — and survive a crash — after
        :meth:`commit`.
        """
        fh = self._require_open()
        t = float(time)
        if t <= self._last_time:
            raise ValueError(
                f"snapshot times must be strictly increasing: "
                f"{t} after {self._last_time}"
            )
        rows = len(names)
        block = np.ascontiguousarray(coords, dtype="<f8").reshape(rows, 3)
        # Reject duplicates *before* interning: a refused snapshot must
        # not leak phantom names into the committed user table.
        if len(set(names)) != rows:
            seen: set[str] = set()
            for name in names:
                if name in seen:
                    raise ValueError(f"user {name!r} appears twice at t={t}")
                seen.add(name)
        ids = np.fromiter(
            (self._users.intern(name) for name in names),
            dtype="<i8",
            count=rows,
        )
        if self._s + 1 > self._cap_s or self._n + rows > self._cap_n:
            self._grow(self._s + 1, self._n + rows, self._reserve)
            fh = self._require_open()
        base = self._data_start
        fh.seek(base + self._offsets["times"] + self._s * _ROW_NBYTES["times"])
        fh.write(np.array([t], dtype="<f8").tobytes())
        fh.seek(
            base
            + self._offsets["snapshot_offsets"]
            + (self._s + 1) * _ROW_NBYTES["snapshot_offsets"]
        )
        fh.write(np.array([self._n + rows], dtype="<i8").tobytes())
        if rows:
            fh.seek(
                base + self._offsets["user_ids"] + self._n * _ROW_NBYTES["user_ids"]
            )
            fh.write(ids.tobytes())
            fh.seek(base + self._offsets["xyz"] + self._n * _ROW_NBYTES["xyz"])
            fh.write(block.tobytes())
        self._s += 1
        self._n += rows
        self._last_time = t

    def commit(self) -> Path:
        """Publish every pending append — the crash-consistency point.

        Flushes the row data, then rewrites the JSON header in place
        with the grown shapes (and any metadata / user-table changes).
        With ``fsync=True`` the data is fsynced before the header so
        the commit is also durable, not merely ordered.  A no-op when
        nothing changed.
        """
        fh = self._require_open()
        dirty = (
            self._s != self._committed_s
            or self._n != self._committed_n
            or self._meta_dirty
        )
        if not dirty:
            return self.path
        header = self._header_bytes()
        if len(header) > self._reserve:
            # The user table or metadata outgrew the reserve; a full
            # rewrite doubles it (and commits).
            self._grow(self._s, self._n, _align(2 * len(header)))
            return self.path
        fh.flush()
        if self._fsync:
            os.fsync(fh.fileno())
        fh.seek(_PREAMBLE.size)
        fh.write(header + b" " * (self._reserve - len(header)))
        fh.flush()
        if self._fsync:
            os.fsync(fh.fileno())
        self._committed_s = self._s
        self._committed_n = self._n
        self._meta_dirty = False
        return self.path

    def load(self, mmap: bool = True) -> Trace:
        """The committed prefix as a trace (a fresh memmap by default)."""
        return read_trace_rtrc(self.path, mmap=mmap)

    # -- layout plumbing ----------------------------------------------------

    def _header_bytes(self) -> bytes:
        sections: dict[str, dict[str, object]] = {}
        shapes = {
            "times": [self._s],
            "snapshot_offsets": [self._s + 1],
            "user_ids": [self._n],
            "xyz": [self._n, 3],
        }
        for name, dtype in _SECTION_DTYPES:
            shape = shapes[name]
            sections[name] = {
                "dtype": dtype,
                "shape": shape,
                "offset": self._offsets[name],
                "nbytes": int(np.prod(shape, dtype=np.int64))
                * np.dtype(dtype).itemsize,
            }
        header = {
            "metadata": {
                name: getattr(self._metadata, name) for name in _METADATA_FIELDS
            },
            "users": list(self._users.names),
            "sections": sections,
            "append": {
                "snapshot_capacity": self._cap_s,
                "observation_capacity": self._cap_n,
            },
        }
        return json.dumps(header, ensure_ascii=False).encode("utf-8")

    def _write_image(self, handle: BinaryIO, header: bytes) -> None:
        """Write preamble + padded header + the committed rows."""
        handle.write(_PREAMBLE.pack(MAGIC, VERSION, 0, self._reserve))
        handle.write(header + b" " * (self._reserve - len(header)))
        handle.write(b"\0" * (self._data_start - _PREAMBLE.size - self._reserve))
        # Row zero of snapshot_offsets is always 0; write it so the
        # committed end never precedes it even on a hole-free FS.
        handle.seek(self._data_start + self._offsets["snapshot_offsets"])
        handle.write(np.array([0], dtype="<i8").tobytes())

    def _written_arrays(self) -> tuple[np.ndarray, ...]:
        """Every written row (committed + pending), memmapped read-only."""
        fh = self._require_open()
        fh.flush()
        base = self._data_start

        def load(name: str, dtype: str, shape: tuple[int, ...]) -> np.ndarray:
            if int(np.prod(shape)) == 0:
                return np.empty(shape, dtype=dtype)
            return np.memmap(
                self.path,
                dtype=dtype,
                mode="r",
                offset=base + self._offsets[name],
                shape=shape,
            )

        times = load("times", "<f8", (self._s,))
        offsets = np.empty(self._s + 1, dtype="<i8")
        offsets[0] = 0
        if self._s:
            offsets[1:] = load("snapshot_offsets", "<i8", (self._s + 1,))[1:]
        ids = load("user_ids", "<i8", (self._n,))
        xyz = load("xyz", "<f8", (self._n, 3))
        return times, offsets, ids, xyz

    def _grow(self, need_s: int, need_n: int, need_reserve: int) -> None:
        self._rewrite(
            self._written_arrays(),
            _grow_capacity(self._cap_s, need_s, self._min_cap_s),
            _grow_capacity(self._cap_n, need_n, self._min_cap_n),
            max(self._reserve, need_reserve, self._min_reserve),
        )

    def _rewrite(
        self,
        arrays: tuple[np.ndarray, ...],
        cap_s: int,
        cap_n: int,
        reserve: int,
    ) -> None:
        """Rebuild the file with new capacities via temp file + rename.

        Readers holding a memmap of the old file keep their consistent
        view — the rename only unlinks the name, not the mapped inode.
        A rewrite commits everything it writes.
        """
        times, offsets, ids, xyz = arrays
        old_fh = self._fh
        self._adopt_layout(cap_s, cap_n, reserve)
        header = self._header_bytes()
        if len(header) > self._reserve:
            self._adopt_layout(cap_s, cap_n, _align(2 * len(header)))
            header = self._header_bytes()
        fd, tmp_name = _tempfile_for(self.path)
        try:
            with os.fdopen(fd, "wb") as handle:
                self._write_image(handle, header)
                base = self._data_start
                for name, arr in (
                    ("times", np.asarray(times, dtype="<f8")),
                    ("snapshot_offsets", np.asarray(offsets, dtype="<i8")),
                    ("user_ids", np.asarray(ids, dtype="<i8")),
                    ("xyz", np.asarray(xyz, dtype="<f8")),
                ):
                    handle.seek(base + self._offsets[name])
                    handle.write(np.ascontiguousarray(arr).tobytes())
                # A rewrite commits everything it writes, so under
                # fsync=True it must be as durable as a header commit
                # before the old (possibly fsynced) file is replaced.
                self._sync_handle(handle)
            os.replace(tmp_name, self.path)
            self._sync_directory()
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if old_fh is not None:
            old_fh.close()
        self._fh = self._locked_open()
        self._committed_s = self._s
        self._committed_n = self._n
        self._meta_dirty = False
