"""Binary on-disk columnar trace format (``.rtrc``) with memmap loading.

The CSV/JSONL formats re-parse every observation on every load, which
dominates repeated-analysis workloads (the paper's sweeps re-read the
same crawled traces many times).  ``.rtrc`` stores the four columnar
arrays of a :class:`~repro.trace.columnar.ColumnarStore` as raw
little-endian sections behind a JSON header, so loading is a handful
of ``np.memmap`` calls — zero parsing, zero copying, lazy paging.

Layout (all integers little-endian)::

    offset 0   magic          b"RTRC"
    offset 4   version        uint16 (currently 1)
    offset 6   reserved       uint16 (zero)
    offset 8   header_length  uint64 — byte length of the JSON header
    offset 16  header         UTF-8 JSON (see below)
    ...        zero padding to a 64-byte boundary
    data       raw array sections, each 64-byte aligned

The JSON header carries the trace metadata, the interner's user names
(index = interned id) and a section table::

    {"metadata": {...TraceMetadata fields...},
     "users": ["name0", "name1", ...],
     "sections": {"times":            {"dtype": "<f8", "shape": [S],     "offset": 0,   "nbytes": ...},
                  "snapshot_offsets": {"dtype": "<i8", "shape": [S + 1], "offset": ..., "nbytes": ...},
                  "user_ids":         {"dtype": "<i8", "shape": [N],     "offset": ..., "nbytes": ...},
                  "xyz":              {"dtype": "<f8", "shape": [N, 3],  "offset": ..., "nbytes": ...}}}

Section offsets are relative to the start of the (aligned) data
region, so the header can be serialized without a fix-point iteration.

A ``.rtrc.gz`` suffix gzips the same byte stream; compressed files
cannot be memory-mapped and are loaded in memory instead.
"""

from __future__ import annotations

import gzip
import json
import os
import struct
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.trace.columnar import ColumnarStore, UserInterner
from repro.trace.trace import Trace, TraceMetadata

#: File magic of the rtrc format.
MAGIC = b"RTRC"

#: Current format version.
VERSION = 1

#: Alignment (bytes) of the data region and of every section.
ALIGNMENT = 64

#: Fixed-size preamble: magic + version + reserved + header length.
_PREAMBLE = struct.Struct("<4sHHQ")

#: Section order and dtypes; the columnar layout pinned on disk.
_SECTION_DTYPES = (
    ("times", "<f8"),
    ("snapshot_offsets", "<i8"),
    ("user_ids", "<i8"),
    ("xyz", "<f8"),
)

_METADATA_FIELDS = tuple(f.name for f in fields(TraceMetadata))


class TraceFormatError(ValueError):
    """A trace file is unreadable: wrong format, corrupt, or truncated.

    Base class for format-specific errors so callers can catch one
    exception across every on-disk representation.
    """


class RtrcFormatError(TraceFormatError):
    """Raised when a file is not a readable rtrc trace."""


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _is_gzip(path: Path) -> bool:
    return path.suffix == ".gz"


def _section_arrays(store: ColumnarStore) -> dict[str, np.ndarray]:
    arrays = {
        "times": store.times,
        "snapshot_offsets": store.snapshot_offsets,
        "user_ids": store.user_ids,
        "xyz": store.xyz,
    }
    return {
        name: np.ascontiguousarray(arrays[name]).astype(dtype, copy=False)
        for name, dtype in _SECTION_DTYPES
    }


def _write_stream(handle: BinaryIO, store: ColumnarStore, metadata: TraceMetadata) -> None:
    arrays = _section_arrays(store)
    sections: dict[str, dict[str, object]] = {}
    cursor = 0
    for name, dtype in _SECTION_DTYPES:
        offset = _align(cursor)
        arr = arrays[name]
        sections[name] = {
            "dtype": dtype,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": arr.nbytes,
        }
        cursor = offset + arr.nbytes
    header = {
        "metadata": {name: getattr(metadata, name) for name in _METADATA_FIELDS},
        "users": list(store.users.names),
        "sections": sections,
    }
    header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(header_bytes))
    handle.write(_PREAMBLE.pack(MAGIC, VERSION, 0, len(header_bytes)))
    handle.write(header_bytes)
    handle.write(b"\0" * (data_start - _PREAMBLE.size - len(header_bytes)))
    cursor = 0
    for name, _ in _SECTION_DTYPES:
        offset = int(sections[name]["offset"])  # type: ignore[arg-type]
        handle.write(b"\0" * (offset - cursor))
        payload = arrays[name].tobytes()
        handle.write(payload)
        cursor = offset + len(payload)


def write_trace_rtrc(trace: Trace, path: str | Path) -> Path:
    """Write a trace in the binary columnar format; returns the path."""
    return write_store_rtrc(trace.columns, trace.metadata, path)


def write_store_rtrc(
    store: ColumnarStore,
    metadata: TraceMetadata,
    path: str | Path,
) -> Path:
    """Write a bare columnar store (plus metadata) as ``.rtrc``.

    The write goes to a temporary sibling file and is renamed into
    place: a memmap-backed store may be *reading* the target file, so
    truncating it in place would fault the still-mapped pages mid
    serialization (and a crash mid-write would corrupt the old data).
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600 files; match what a plain open() under
        # the caller's umask would have produced.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "wb") as raw:
            if _is_gzip(target):
                with gzip.open(raw, "wb") as handle:
                    _write_stream(handle, store, metadata)
            else:
                _write_stream(raw, store, metadata)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def _parse_preamble(raw: bytes, path: Path) -> tuple[int, int]:
    """Validate the fixed preamble; returns ``(header_length, data_start)``."""
    if len(raw) < _PREAMBLE.size:
        raise RtrcFormatError(f"{path}: truncated rtrc file ({len(raw)} bytes)")
    magic, version, _reserved, header_length = _PREAMBLE.unpack_from(raw)
    if magic != MAGIC:
        raise RtrcFormatError(f"{path}: bad magic {magic!r}; not an rtrc trace")
    if version != VERSION:
        raise RtrcFormatError(
            f"{path}: unsupported rtrc version {version} (reader speaks {VERSION})"
        )
    return int(header_length), _align(_PREAMBLE.size + int(header_length))


def _parse_header(payload: bytes, path: Path) -> dict:
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RtrcFormatError(f"{path}: corrupt rtrc header ({exc})") from exc
    if not isinstance(header, dict):
        raise RtrcFormatError(f"{path}: rtrc header is not a JSON object")
    for key in ("metadata", "users", "sections"):
        if key not in header:
            raise RtrcFormatError(f"{path}: rtrc header misses {key!r}")
    missing = [name for name, _ in _SECTION_DTYPES if name not in header["sections"]]
    if missing:
        raise RtrcFormatError(f"{path}: rtrc header misses sections {missing}")
    for name, dtype in _SECTION_DTYPES:
        _validate_section_spec(header["sections"][name], name, np.dtype(dtype), path)
    return header


def _validate_section_spec(
    spec: object, name: str, dtype: np.dtype, path: Path
) -> None:
    """Reject malformed or internally inconsistent section tables.

    Everything the loaders later trust — integer offsets, a sane shape,
    and ``nbytes`` matching ``shape`` — is checked here so corruption
    surfaces as an :class:`RtrcFormatError` naming the section, never
    as a numpy reshape/memmap traceback deep in the load.
    """
    if not isinstance(spec, dict):
        raise RtrcFormatError(f"{path}: section {name!r} is not an object")
    for key in ("shape", "offset", "nbytes"):
        if key not in spec:
            raise RtrcFormatError(f"{path}: section {name!r} misses {key!r}")
    shape = spec["shape"]
    if not isinstance(shape, list) or not all(
        isinstance(v, int) and v >= 0 for v in shape
    ):
        raise RtrcFormatError(
            f"{path}: section {name!r} has invalid shape {shape!r}"
        )
    offset, nbytes = spec["offset"], spec["nbytes"]
    if not isinstance(offset, int) or offset < 0 or offset % ALIGNMENT != 0:
        raise RtrcFormatError(
            f"{path}: section {name!r} has invalid offset {offset!r}"
        )
    if not isinstance(nbytes, int) or nbytes < 0:
        raise RtrcFormatError(
            f"{path}: section {name!r} has invalid nbytes {nbytes!r}"
        )
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if nbytes != expected:
        raise RtrcFormatError(
            f"{path}: section {name!r} length mismatch — shape {shape} "
            f"needs {expected} bytes, header claims {nbytes}"
        )


def _store_from_sections(
    header: dict,
    load_section,
    path: Path,
) -> tuple[ColumnarStore, TraceMetadata]:
    arrays = {}
    for name, dtype in _SECTION_DTYPES:
        spec = header["sections"][name]
        shape = tuple(int(v) for v in spec["shape"])
        arrays[name] = load_section(spec, np.dtype(dtype), shape)
    try:
        metadata = TraceMetadata(**header["metadata"])
    except (TypeError, ValueError) as exc:
        raise RtrcFormatError(f"{path}: invalid rtrc metadata ({exc})") from exc
    try:
        store = ColumnarStore(
            arrays["times"],
            arrays["snapshot_offsets"],
            arrays["user_ids"],
            arrays["xyz"],
            UserInterner(header["users"]),
        )
    except (TypeError, ValueError) as exc:
        raise RtrcFormatError(
            f"{path}: rtrc sections do not form a valid trace ({exc})"
        ) from exc
    return store, metadata


def read_store_rtrc(
    path: str | Path,
    mmap: bool = True,
) -> tuple[ColumnarStore, TraceMetadata]:
    """Load the columnar store and metadata of an ``.rtrc`` file.

    With ``mmap`` (the default, plain files only) the arrays are
    ``np.memmap``-backed read-only views: nothing is parsed or copied,
    and pages fault in lazily as the analysis touches them.  Gzipped
    files fall back to an in-memory load.
    """
    source = Path(path)
    if _is_gzip(source):
        with gzip.open(source, "rb") as handle:
            raw = handle.read()
        return _read_buffer(raw, source)
    if not mmap:
        return _read_buffer(source.read_bytes(), source)

    file_size = source.stat().st_size
    with open(source, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        header_length, data_start = _parse_preamble(preamble, source)
        if _PREAMBLE.size + header_length > file_size:
            raise RtrcFormatError(
                f"{source}: truncated rtrc file — header claims "
                f"{header_length} bytes, file has {file_size}"
            )
        header = _parse_header(handle.read(header_length), source)

    def load_section(spec: dict, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        nbytes = int(spec["nbytes"])
        if nbytes == 0:
            return np.empty(shape, dtype=dtype)
        end = data_start + int(spec["offset"]) + nbytes
        if end > file_size:
            raise RtrcFormatError(
                f"{source}: truncated rtrc file — section needs bytes up to "
                f"{end}, file has {file_size}"
            )
        return np.memmap(
            source,
            dtype=dtype,
            mode="r",
            offset=data_start + int(spec["offset"]),
            shape=shape,
        )

    return _store_from_sections(header, load_section, source)


def _read_buffer(raw: bytes, path: Path) -> tuple[ColumnarStore, TraceMetadata]:
    header_length, data_start = _parse_preamble(raw, path)
    if _PREAMBLE.size + header_length > len(raw):
        raise RtrcFormatError(
            f"{path}: truncated rtrc file — header claims {header_length} "
            f"bytes, buffer has {len(raw)}"
        )
    header = _parse_header(raw[_PREAMBLE.size:_PREAMBLE.size + header_length], path)

    def load_section(spec: dict, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        nbytes = int(spec["nbytes"])
        if nbytes == 0:
            return np.empty(shape, dtype=dtype)
        start = data_start + int(spec["offset"])
        if start + nbytes > len(raw):
            raise RtrcFormatError(
                f"{path}: truncated rtrc file — section needs bytes up to "
                f"{start + nbytes}, buffer has {len(raw)}"
            )
        return np.frombuffer(raw, dtype=dtype, count=int(np.prod(shape)), offset=start).reshape(shape)

    return _store_from_sections(header, load_section, path)


def read_trace_rtrc(path: str | Path, mmap: bool = True) -> Trace:
    """Read a trace written by :func:`write_trace_rtrc`."""
    store, metadata = read_store_rtrc(path, mmap=mmap)
    return Trace.from_columns(store, metadata)
