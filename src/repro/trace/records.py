"""Atomic trace records: one observation and one snapshot."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, NamedTuple

import numpy as np

from repro.geometry import Position


class PositionRecord(NamedTuple):
    """One crawler observation: *user was at (x, y, z) at time t*.

    ``time`` is in seconds from the start of the measurement; ``user``
    is an opaque identifier (the crawler never needs real identities,
    mirroring the anonymized traces the authors released).
    """

    time: float
    user: str
    x: float
    y: float
    z: float = 0.0

    @property
    def position(self) -> Position:
        """The record's location as a :class:`~repro.geometry.Position`."""
        return Position(self.x, self.y, self.z)

    @property
    def is_sitting_artifact(self) -> bool:
        """True for the SL quirk of reporting seated avatars at the origin."""
        return self.x == 0.0 and self.y == 0.0 and self.z == 0.0


@dataclass(frozen=True)
class Snapshot:
    """All users observed at one sampling instant.

    Immutable once built: analysis code may share snapshots freely.
    """

    time: float
    positions: Mapping[str, Position] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the mapping so sharing a snapshot is safe.
        object.__setattr__(self, "positions", dict(self.positions))

    def __len__(self) -> int:
        return len(self.positions)

    def __contains__(self, user: str) -> bool:
        return user in self.positions

    def __iter__(self) -> Iterator[str]:
        return iter(self.positions)

    @property
    def users(self) -> frozenset[str]:
        """Identifiers of every user present in the snapshot."""
        return frozenset(self.positions)

    def position_of(self, user: str) -> Position:
        """Location of ``user``; raises ``KeyError`` when absent."""
        return self.positions[user]

    def records(self) -> list[PositionRecord]:
        """Explode the snapshot into per-user records."""
        return [
            PositionRecord(self.time, user, pos.x, pos.y, pos.z)
            for user, pos in self.positions.items()
        ]

    @classmethod
    def from_arrays(cls, time: float, users: list[str], coords: np.ndarray) -> "Snapshot":
        """Snapshot view over columnar data, with the array cache pre-seeded.

        Used by :class:`~repro.trace.Trace` to materialize dict-backed
        views of its columnar store without paying a later dict→array
        conversion in :meth:`as_arrays`.
        """
        coords = np.asarray(coords, dtype=float).reshape(len(users), 3)
        positions = {
            user: Position(float(x), float(y), float(z))
            for user, (x, y, z) in zip(users, coords)
        }
        snapshot = cls(time, positions)
        object.__setattr__(snapshot, "_arrays", (users, coords))
        return snapshot

    def as_arrays(self) -> tuple[list[str], np.ndarray]:
        """Users and an ``(n, 3)`` coordinate array, in a stable order.

        The order is the snapshot's insertion order, which the
        simulator keeps deterministic; analysis code relies only on the
        pairing between the two return values.  The result is computed
        once and cached (treat both returns as read-only): analyzer
        passes revisit the same snapshots for every range ``r``.
        """
        cached = getattr(self, "_arrays", None)
        if cached is None:
            users = list(self.positions)
            coords = np.array(
                [[p.x, p.y, p.z] for p in self.positions.values()], dtype=float
            ).reshape(len(users), 3)
            cached = (users, coords)
            object.__setattr__(self, "_arrays", cached)
        return cached
