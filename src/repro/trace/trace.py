"""The trace container: metadata plus a columnar snapshot store.

Since the columnar refactor a :class:`Trace` is a thin façade over a
:class:`~repro.trace.columnar.ColumnarStore` — interned user ids plus
flat ``times`` / ``snapshot_offsets`` / ``user_ids`` / ``xyz`` arrays.
The historical object API (``Snapshot`` iteration, ``PositionRecord``
lists) is preserved as views materialized on demand; analysis hot
paths reach the arrays through :attr:`Trace.columns`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geometry import Position
from repro.trace.columnar import (
    ColumnarBuilder,
    ColumnarStore,
    store_from_records,
)
from repro.trace.records import PositionRecord, Snapshot

#: Default land footprint in meters (Second Life region size).
DEFAULT_LAND_SIZE = 256.0


@dataclass(frozen=True)
class TraceMetadata:
    """Provenance and geometry of a trace.

    ``tau`` is the sampling interval the monitor aimed for; snapshots
    carry their own timestamps, so gaps (crawler restarts, sensor
    outages) are representable and detected by validation rather than
    hidden.
    """

    land_name: str = "unknown"
    width: float = DEFAULT_LAND_SIZE
    height: float = DEFAULT_LAND_SIZE
    tau: float = 10.0
    source: str = "unknown"
    notes: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"land must have positive size, got {self.width}x{self.height}")
        if self.tau <= 0:
            raise ValueError(f"sampling interval must be positive, got {self.tau}")


class Trace:
    """A time-ordered sequence of snapshots with metadata.

    Construction validates ordering once; afterwards the trace behaves
    as an immutable value as far as the analysis layer is concerned.
    Storage is columnar (:attr:`columns`); ``Snapshot`` objects handed
    out by iteration/indexing are cached views of the same arrays.
    """

    def __init__(
        self,
        snapshots: Iterable[Snapshot],
        metadata: TraceMetadata | None = None,
    ) -> None:
        self.metadata = metadata or TraceMetadata()
        ordered = sorted(snapshots, key=lambda s: s.time)
        times = [s.time for s in ordered]
        if len(set(times)) != len(times):
            raise ValueError("trace contains duplicate snapshot timestamps")
        builder = ColumnarBuilder()
        for snapshot in ordered:
            users, coords = snapshot.as_arrays()
            builder.append_snapshot(snapshot.time, users, coords)
        self._columns = builder.build()
        # The input snapshots already are the views the columns describe.
        self._views: list[Snapshot | None] = list(ordered)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        columns: ColumnarStore,
        metadata: TraceMetadata | None = None,
    ) -> "Trace":
        """Wrap an already-built columnar store (no copying)."""
        trace = cls.__new__(cls)
        trace.metadata = metadata or TraceMetadata()
        trace._columns = columns
        trace._views = [None] * columns.snapshot_count
        return trace

    @classmethod
    def from_records(
        cls,
        records: Iterable[PositionRecord],
        metadata: TraceMetadata | None = None,
    ) -> "Trace":
        """Group flat records into snapshots by timestamp."""
        rows = list(records)
        times = np.fromiter((r.time for r in rows), dtype=np.float64, count=len(rows))
        xyz = np.empty((len(rows), 3), dtype=np.float64)
        for i, record in enumerate(rows):
            xyz[i, 0] = record.x
            xyz[i, 1] = record.y
            xyz[i, 2] = record.z
        store = store_from_records(times, [r.user for r in rows], xyz)
        return cls.from_columns(store, metadata)

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return self._columns.snapshot_count

    def __iter__(self) -> Iterator[Snapshot]:
        for index in range(len(self)):
            yield self[index]

    def __getitem__(self, index: int) -> Snapshot | list[Snapshot]:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("snapshot index out of range")
        view = self._views[index]
        if view is None:
            ids, coords = self._columns.slice_of(index)
            names = self._columns.users.names
            view = Snapshot.from_arrays(
                float(self._columns.times[index]),
                [names[uid] for uid in ids],
                coords,
            )
            self._views[index] = view
        return view

    # -- accessors --------------------------------------------------------

    @property
    def columns(self) -> ColumnarStore:
        """The canonical columnar storage.  Treat as read-only."""
        return self._columns

    @property
    def snapshots(self) -> Sequence[Snapshot]:
        """The snapshots, oldest first (views over :attr:`columns`)."""
        return tuple(self[index] for index in range(len(self)))

    @property
    def is_empty(self) -> bool:
        """True when the trace holds no snapshots."""
        return self._columns.snapshot_count == 0

    @property
    def start_time(self) -> float:
        """Timestamp of the first snapshot."""
        self._require_nonempty()
        return float(self._columns.times[0])

    @property
    def end_time(self) -> float:
        """Timestamp of the last snapshot."""
        self._require_nonempty()
        return float(self._columns.times[-1])

    @property
    def duration(self) -> float:
        """Covered time span (0 for a single-snapshot trace)."""
        self._require_nonempty()
        return self.end_time - self.start_time

    def unique_users(self) -> set[str]:
        """Every user that appears at least once — the paper's 'unique visitors'."""
        names = self._columns.users.names
        return {names[uid] for uid in self._columns.present_ids()}

    def concurrency(self) -> list[int]:
        """User count per snapshot — basis for 'average concurrent users'."""
        return [int(c) for c in self._columns.counts()]

    def mean_concurrency(self) -> float:
        """Average number of simultaneously observed users."""
        counts = self._columns.counts()
        if not len(counts):
            return 0.0
        return float(counts.mean())

    def records(self) -> list[PositionRecord]:
        """The whole trace as flat records, time-ordered."""
        cols = self._columns
        names = cols.users.names
        row_times = cols.row_times()
        return [
            PositionRecord(
                float(row_times[i]),
                names[cols.user_ids[i]],
                float(cols.xyz[i, 0]),
                float(cols.xyz[i, 1]),
                float(cols.xyz[i, 2]),
            )
            for i in range(cols.observation_count)
        ]

    def observations_of(self, user: str) -> list[tuple[float, Position]]:
        """Time-ordered ``(time, position)`` pairs for one user."""
        cols = self._columns
        if user not in cols.users:
            return []
        uid = cols.users.id_of(user)
        rows = np.flatnonzero(cols.user_ids == uid)
        row_times = cols.row_times()
        return [
            (
                float(row_times[i]),
                Position(*(float(v) for v in cols.xyz[i])),
            )
            for i in rows
        ]

    def window(self, start: float, end: float) -> "Trace":
        """Sub-trace with snapshots in ``[start, end]`` (metadata shared)."""
        if end < start:
            raise ValueError(f"empty window [{start}, {end}]")
        times = self._columns.times
        kept = np.flatnonzero((times >= start) & (times <= end))
        return Trace.from_columns(self._columns.select(kept), self.metadata)

    def resampled(self, every: int) -> "Trace":
        """Keep every ``every``-th snapshot (tau scales accordingly).

        Used by the granularity ablation: a tau=10 s trace resampled
        with ``every=3`` behaves like a tau=30 s measurement.
        """
        if every < 1:
            raise ValueError(f"resampling factor must be >= 1, got {every}")
        kept = np.arange(0, self._columns.snapshot_count, every)
        meta = replace(self.metadata, tau=self.metadata.tau * every)
        return Trace.from_columns(self._columns.select(kept), meta)

    def _require_nonempty(self) -> None:
        if self.is_empty:
            raise ValueError("operation requires a non-empty trace")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"{self.start_time:.0f}..{self.end_time:.0f}s" if len(self) else "empty"
        return (
            f"Trace(land={self.metadata.land_name!r}, snapshots={len(self)}, "
            f"span={span}, users={len(self.unique_users())})"
        )
