"""The trace container: metadata plus a time-ordered snapshot list."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.geometry import Position
from repro.trace.records import PositionRecord, Snapshot

#: Default land footprint in meters (Second Life region size).
DEFAULT_LAND_SIZE = 256.0


@dataclass(frozen=True)
class TraceMetadata:
    """Provenance and geometry of a trace.

    ``tau`` is the sampling interval the monitor aimed for; snapshots
    carry their own timestamps, so gaps (crawler restarts, sensor
    outages) are representable and detected by validation rather than
    hidden.
    """

    land_name: str = "unknown"
    width: float = DEFAULT_LAND_SIZE
    height: float = DEFAULT_LAND_SIZE
    tau: float = 10.0
    source: str = "unknown"
    notes: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"land must have positive size, got {self.width}x{self.height}")
        if self.tau <= 0:
            raise ValueError(f"sampling interval must be positive, got {self.tau}")


class Trace:
    """A time-ordered sequence of snapshots with metadata.

    Construction validates ordering once; afterwards the trace behaves
    as an immutable value as far as the analysis layer is concerned.
    """

    def __init__(
        self,
        snapshots: Iterable[Snapshot],
        metadata: TraceMetadata | None = None,
    ) -> None:
        self.metadata = metadata or TraceMetadata()
        self._snapshots: list[Snapshot] = sorted(snapshots, key=lambda s: s.time)
        times = [s.time for s in self._snapshots]
        if len(set(times)) != len(times):
            raise ValueError("trace contains duplicate snapshot timestamps")

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[PositionRecord],
        metadata: TraceMetadata | None = None,
    ) -> "Trace":
        """Group flat records into snapshots by timestamp."""
        by_time: dict[float, dict[str, Position]] = {}
        for record in records:
            bucket = by_time.setdefault(record.time, {})
            if record.user in bucket:
                raise ValueError(
                    f"user {record.user!r} appears twice at t={record.time}"
                )
            bucket[record.user] = record.position
        snapshots = [Snapshot(t, positions) for t, positions in by_time.items()]
        return cls(snapshots, metadata)

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> Snapshot:
        return self._snapshots[index]

    # -- accessors --------------------------------------------------------

    @property
    def snapshots(self) -> Sequence[Snapshot]:
        """The snapshots, oldest first."""
        return tuple(self._snapshots)

    @property
    def is_empty(self) -> bool:
        """True when the trace holds no snapshots."""
        return not self._snapshots

    @property
    def start_time(self) -> float:
        """Timestamp of the first snapshot."""
        self._require_nonempty()
        return self._snapshots[0].time

    @property
    def end_time(self) -> float:
        """Timestamp of the last snapshot."""
        self._require_nonempty()
        return self._snapshots[-1].time

    @property
    def duration(self) -> float:
        """Covered time span (0 for a single-snapshot trace)."""
        self._require_nonempty()
        return self.end_time - self.start_time

    def unique_users(self) -> set[str]:
        """Every user that appears at least once — the paper's 'unique visitors'."""
        users: set[str] = set()
        for snapshot in self._snapshots:
            users |= snapshot.users
        return users

    def concurrency(self) -> list[int]:
        """User count per snapshot — basis for 'average concurrent users'."""
        return [len(snapshot) for snapshot in self._snapshots]

    def mean_concurrency(self) -> float:
        """Average number of simultaneously observed users."""
        counts = self.concurrency()
        if not counts:
            return 0.0
        return sum(counts) / len(counts)

    def records(self) -> list[PositionRecord]:
        """The whole trace as flat records, time-ordered."""
        flat: list[PositionRecord] = []
        for snapshot in self._snapshots:
            flat.extend(snapshot.records())
        return flat

    def observations_of(self, user: str) -> list[tuple[float, Position]]:
        """Time-ordered ``(time, position)`` pairs for one user."""
        return [
            (snapshot.time, snapshot.position_of(user))
            for snapshot in self._snapshots
            if user in snapshot
        ]

    def window(self, start: float, end: float) -> "Trace":
        """Sub-trace with snapshots in ``[start, end]`` (metadata shared)."""
        if end < start:
            raise ValueError(f"empty window [{start}, {end}]")
        kept = [s for s in self._snapshots if start <= s.time <= end]
        return Trace(kept, self.metadata)

    def resampled(self, every: int) -> "Trace":
        """Keep every ``every``-th snapshot (tau scales accordingly).

        Used by the granularity ablation: a tau=10 s trace resampled
        with ``every=3`` behaves like a tau=30 s measurement.
        """
        if every < 1:
            raise ValueError(f"resampling factor must be >= 1, got {every}")
        kept = self._snapshots[::every]
        meta = replace(self.metadata, tau=self.metadata.tau * every)
        return Trace(kept, meta)

    def _require_nonempty(self) -> None:
        if not self._snapshots:
            raise ValueError("operation requires a non-empty trace")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"{self.start_time:.0f}..{self.end_time:.0f}s" if self._snapshots else "empty"
        return (
            f"Trace(land={self.metadata.land_name!r}, snapshots={len(self)}, "
            f"span={span}, users={len(self.unique_users())})"
        )
