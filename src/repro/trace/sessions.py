"""Session extraction: from snapshots to per-user visits.

The paper's trip metrics are defined per *visit*: travel length is the
distance covered "from login to logout", travel time is "the total
connection time to the SL land", and effective travel time excludes
pauses.  A monitor only sees presence at sampling instants, so a
session is reconstructed as a maximal run of observations whose gaps
stay below a threshold (default: twice the sampling interval — one
missed snapshot is tolerated, two mean the user left and came back).

Extraction runs on the columnar store: one stable argsort groups every
observation row by user (time order preserved within a user), and gap
thresholds split the runs — no per-snapshot dict walking.  The
canonical result form is the CSR-backed :class:`SessionSet`
(:func:`extract_session_set`); :class:`UserSession` objects are views
built lazily from its rows, and the trip metrics (travel length,
effective travel time) have vectorized columnar counterparts on the
set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.geometry import Position, distance
from repro.trace.columnar import _concat_aranges, name_ranks
from repro.trace.trace import Trace

#: Displacement below which two consecutive observations count as a pause.
#: SL avatars idle in place jitter by centimeters; real walking covers
#: meters per sampling interval.
PAUSE_EPSILON = 0.5


@dataclass(frozen=True)
class UserSession:
    """One reconstructed visit of one user to a land."""

    user: str
    times: tuple[float, ...]
    positions: tuple[Position, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("a session needs at least one observation")
        if len(self.times) != len(self.positions):
            raise ValueError("times and positions must align")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("session observations must be strictly time-ordered")

    @classmethod
    def _from_arrays(cls, user: str, times: np.ndarray, xyz: np.ndarray) -> "UserSession":
        """Session over columnar rows, with the array cache pre-seeded."""
        session = cls(
            user,
            tuple(float(t) for t in times),
            tuple(Position(*(float(v) for v in row)) for row in xyz),
        )
        object.__setattr__(
            session, "_arrays", (np.asarray(times, dtype=float), np.asarray(xyz, dtype=float))
        )
        return session

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, xyz)`` arrays of the visit, cached after first use."""
        cached = getattr(self, "_arrays", None)
        if cached is None:
            times = np.asarray(self.times, dtype=float)
            xyz = np.array([[p.x, p.y, p.z] for p in self.positions], dtype=float)
            cached = (times, xyz.reshape(len(self.times), 3))
            object.__setattr__(self, "_arrays", cached)
        return cached

    @property
    def login_time(self) -> float:
        """First time the monitor saw the user in this visit."""
        return self.times[0]

    @property
    def logout_time(self) -> float:
        """Last time the monitor saw the user in this visit."""
        return self.times[-1]

    @property
    def travel_time(self) -> float:
        """The paper's *travel time*: total connection time to the land."""
        return self.logout_time - self.login_time

    @property
    def observation_count(self) -> int:
        """Number of snapshots in which the user appeared."""
        return len(self.times)

    def _step_lengths(self) -> np.ndarray:
        """Planar displacement per inter-observation step."""
        _, xyz = self.as_arrays()
        return np.hypot(np.diff(xyz[:, 0]), np.diff(xyz[:, 1]))

    def travel_length(self) -> float:
        """The paper's *travel length*: summed displacement login→logout."""
        return float(self._step_lengths().sum())

    def effective_travel_time(self, pause_epsilon: float = PAUSE_EPSILON) -> float:
        """The paper's *effective travel time*: time spent moving.

        An inter-observation interval counts as movement when the
        displacement across it exceeds ``pause_epsilon`` meters.
        """
        times, _ = self.as_arrays()
        moving = self._step_lengths() > pause_epsilon
        return float(np.diff(times)[moving].sum())

    def pause_time(self, pause_epsilon: float = PAUSE_EPSILON) -> float:
        """Connected-but-stationary time (complement of effective travel)."""
        return self.travel_time - self.effective_travel_time(pause_epsilon)

    def net_displacement(self) -> float:
        """Straight-line distance between login and logout points."""
        return distance(self.positions[0], self.positions[-1])


class SessionSet:
    """User visits as one CSR block — the canonical columnar form.

    The layout is exactly the process-backend codec's payload:
    ``user_ids`` (one int64 interner id per session), ``offsets``
    (int64 row offsets — session ``k`` owns observation rows
    ``offsets[k]:offsets[k + 1]``), ``times`` / ``xyz`` (the
    concatenated per-session observation rows).  Sessions are ordered
    by ``(login_time, user name)`` — the order the object extractor
    always produced.

    :class:`UserSession` objects are *views* built lazily: iterate,
    index, or call :meth:`sessions` (cached).  Consumers that only
    need numbers (trip metrics, the codec, the boundary merge) read
    the columns and never box a row.
    """

    __slots__ = ("user_ids", "offsets", "times", "xyz", "_names", "_sessions")

    def __init__(
        self,
        user_ids: np.ndarray,
        offsets: np.ndarray,
        times: np.ndarray,
        xyz: np.ndarray,
        names: Sequence[str],
    ) -> None:
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.times = np.asarray(times, dtype=np.float64)
        self.xyz = np.asarray(xyz, dtype=np.float64).reshape(-1, 3)
        if len(self.offsets) != len(self.user_ids) + 1:
            raise ValueError("offsets must have one entry per session plus one")
        if len(self.xyz) != len(self.times):
            raise ValueError("times and xyz rows must align")
        self._names = names
        self._sessions: list[UserSession] | None = None

    @classmethod
    def empty(cls, names: Sequence[str]) -> "SessionSet":
        """A set with zero sessions over the given name table."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty((0, 3), dtype=np.float64),
            names,
        )

    # -- shape & comparison ------------------------------------------------

    def __len__(self) -> int:
        return len(self.user_ids)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SessionSet):
            return (
                np.array_equal(self.user_ids, other.user_ids)
                and np.array_equal(self.offsets, other.offsets)
                and np.array_equal(self.times, other.times)
                and np.array_equal(self.xyz, other.xyz)
                and list(self._names) == list(other._names)
            )
        if isinstance(other, list):
            return self.sessions() == other
        return NotImplemented

    __hash__ = None  # mutable cache inside; not hashable

    @property
    def names(self) -> Sequence[str]:
        """The interner name table the ids index into."""
        return self._names

    def arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The CSR payload ``(user_ids, offsets, times, xyz)``."""
        return self.user_ids, self.offsets, self.times, self.xyz

    # -- lazy object views -------------------------------------------------

    def _session(self, k: int) -> UserSession:
        lo, hi = self.offsets[k], self.offsets[k + 1]
        return UserSession._from_arrays(
            self._names[self.user_ids[k]], self.times[lo:hi], self.xyz[lo:hi]
        )

    def __getitem__(self, k: int) -> UserSession:
        if self._sessions is not None:
            return self._sessions[k]
        return self._session(k)

    def __iter__(self) -> Iterator[UserSession]:
        if self._sessions is not None:
            return iter(self._sessions)
        return (self._session(k) for k in range(len(self)))

    def sessions(self) -> list[UserSession]:
        """The rows as ``UserSession`` objects (built once, cached)."""
        if self._sessions is None:
            bounds = self.offsets.tolist()
            names = self._names
            self._sessions = [
                UserSession._from_arrays(
                    names[uid], self.times[lo:hi], self.xyz[lo:hi]
                )
                for uid, lo, hi in zip(
                    self.user_ids.tolist(), bounds, bounds[1:]
                )
            ]
        return self._sessions

    # -- columnar trip metrics ---------------------------------------------

    def observation_counts(self) -> np.ndarray:
        """Observations per session."""
        return np.diff(self.offsets)

    def login_times(self) -> np.ndarray:
        """First observation time of each session."""
        return self.times[self.offsets[:-1]]

    def logout_times(self) -> np.ndarray:
        """Last observation time of each session."""
        return self.times[self.offsets[1:] - 1]

    def travel_times(self) -> np.ndarray:
        """Per-session connection time (logout − login)."""
        return self.logout_times() - self.login_times()

    def _step_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Planar step lengths between consecutive rows + validity mask.

        Steps that cross a session boundary (last row of session ``k``
        to first row of ``k + 1``) are marked invalid; every metric
        zeroes them before the per-session segment sums.
        """
        if len(self.times) < 2:
            empty = np.empty(0, dtype=np.float64)
            return empty, np.empty(0, dtype=np.bool_)
        lengths = np.hypot(
            np.diff(self.xyz[:, 0]), np.diff(self.xyz[:, 1])
        )
        valid = np.ones(len(lengths), dtype=np.bool_)
        valid[self.offsets[1:-1] - 1] = False
        return lengths, valid

    def _segment_sums(self, per_step: np.ndarray) -> np.ndarray:
        """Per-session sums of a (boundary-zeroed) per-step array."""
        if not len(self):
            return np.empty(0, dtype=np.float64)
        prefix = np.concatenate(
            (np.zeros(1, dtype=np.float64), np.cumsum(per_step))
        )
        return prefix[self.offsets[1:] - 1] - prefix[self.offsets[:-1]]

    def travel_lengths(self) -> np.ndarray:
        """Per-session summed planar displacement login→logout."""
        lengths, valid = self._step_table()
        return self._segment_sums(np.where(valid, lengths, 0.0))

    def effective_travel_times(
        self, pause_epsilon: float = PAUSE_EPSILON
    ) -> np.ndarray:
        """Per-session time spent moving (pauses excluded)."""
        lengths, valid = self._step_table()
        if not len(lengths):
            return np.zeros(len(self), dtype=np.float64)
        moving = valid & (lengths > pause_epsilon)
        return self._segment_sums(np.where(moving, np.diff(self.times), 0.0))


def extract_session_set(
    trace: Trace,
    gap_threshold: float | None = None,
) -> SessionSet:
    """Split every user's observations into visits, columnar form.

    One stable argsort groups every observation row by user (time
    order preserved within a user); gap thresholds split the runs, a
    second lexsort puts the sessions into ``(login_time, user)``
    order, and one gather builds the CSR block — no per-session Python
    objects anywhere.
    """
    if gap_threshold is None:
        gap_threshold = 2.0 * trace.metadata.tau
    if gap_threshold <= 0:
        raise ValueError(f"gap threshold must be positive, got {gap_threshold}")

    cols = trace.columns
    names = cols.users.names
    if cols.observation_count == 0:
        return SessionSet.empty(names)
    order = np.argsort(cols.user_ids, kind="stable")
    uids = cols.user_ids[order]
    times = cols.row_times()[order]
    xyz = cols.xyz[order]

    breaks = np.empty(len(uids), dtype=bool)
    breaks[0] = True
    breaks[1:] = (uids[1:] != uids[:-1]) | (np.diff(times) > gap_threshold)
    starts = np.flatnonzero(breaks)
    counts = np.append(starts[1:], len(uids)) - starts

    # (login, user-name) order without building a single tuple: logins
    # are primary, name ranks break the (different-user) ties — the
    # same user can never log in twice at the same instant.
    final = np.lexsort((name_ranks(names)[uids[starts]], times[starts]))
    rows = _concat_aranges(starts[final], counts[final])
    offsets = np.zeros(len(final) + 1, dtype=np.int64)
    np.cumsum(counts[final], out=offsets[1:])
    return SessionSet(uids[starts][final], offsets, times[rows], xyz[rows], names)


def extract_sessions(
    trace: Trace,
    gap_threshold: float | None = None,
) -> list[UserSession]:
    """Split every user's observations into visits.

    Object-list view over :func:`extract_session_set` — same rows,
    same ``(login_time, user)`` order, boxed as :class:`UserSession`.

    Parameters
    ----------
    trace:
        The monitored trace.
    gap_threshold:
        Maximum tolerated gap (seconds) between consecutive
        observations of the same visit.  Defaults to twice the trace's
        sampling interval.
    """
    return extract_session_set(trace, gap_threshold).sessions()


def extract_sessions_loop(
    trace: Trace,
    gap_threshold: float | None = None,
) -> list[UserSession]:
    """The original per-run object builder, kept as oracle/baseline.

    Same grouping argsort as :func:`extract_session_set`, but each run
    is boxed into a :class:`UserSession` immediately and the final
    ordering is a Python object sort — the benchmark baseline the
    columnar path is measured against.
    """
    if gap_threshold is None:
        gap_threshold = 2.0 * trace.metadata.tau
    if gap_threshold <= 0:
        raise ValueError(f"gap threshold must be positive, got {gap_threshold}")

    cols = trace.columns
    if cols.observation_count == 0:
        return []
    order = np.argsort(cols.user_ids, kind="stable")
    uids = cols.user_ids[order]
    times = cols.row_times()[order]
    xyz = cols.xyz[order]

    breaks = np.empty(len(uids), dtype=bool)
    breaks[0] = True
    breaks[1:] = (uids[1:] != uids[:-1]) | (np.diff(times) > gap_threshold)
    starts = np.flatnonzero(breaks)
    ends = np.append(starts[1:], len(uids))

    names = cols.users.names
    sessions = [
        UserSession._from_arrays(names[uids[lo]], times[lo:hi], xyz[lo:hi])
        for lo, hi in zip(starts, ends)
    ]
    sessions.sort(key=lambda s: (s.login_time, s.user))
    return sessions
