"""Session extraction: from snapshots to per-user visits.

The paper's trip metrics are defined per *visit*: travel length is the
distance covered "from login to logout", travel time is "the total
connection time to the SL land", and effective travel time excludes
pauses.  A monitor only sees presence at sampling instants, so a
session is reconstructed as a maximal run of observations whose gaps
stay below a threshold (default: twice the sampling interval — one
missed snapshot is tolerated, two mean the user left and came back).

Extraction runs on the columnar store: one stable argsort groups every
observation row by user (time order preserved within a user), and gap
thresholds split the runs — no per-snapshot dict walking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Position, distance
from repro.trace.trace import Trace

#: Displacement below which two consecutive observations count as a pause.
#: SL avatars idle in place jitter by centimeters; real walking covers
#: meters per sampling interval.
PAUSE_EPSILON = 0.5


@dataclass(frozen=True)
class UserSession:
    """One reconstructed visit of one user to a land."""

    user: str
    times: tuple[float, ...]
    positions: tuple[Position, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("a session needs at least one observation")
        if len(self.times) != len(self.positions):
            raise ValueError("times and positions must align")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("session observations must be strictly time-ordered")

    @classmethod
    def _from_arrays(cls, user: str, times: np.ndarray, xyz: np.ndarray) -> "UserSession":
        """Session over columnar rows, with the array cache pre-seeded."""
        session = cls(
            user,
            tuple(float(t) for t in times),
            tuple(Position(*(float(v) for v in row)) for row in xyz),
        )
        object.__setattr__(
            session, "_arrays", (np.asarray(times, dtype=float), np.asarray(xyz, dtype=float))
        )
        return session

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, xyz)`` arrays of the visit, cached after first use."""
        cached = getattr(self, "_arrays", None)
        if cached is None:
            times = np.asarray(self.times, dtype=float)
            xyz = np.array([[p.x, p.y, p.z] for p in self.positions], dtype=float)
            cached = (times, xyz.reshape(len(self.times), 3))
            object.__setattr__(self, "_arrays", cached)
        return cached

    @property
    def login_time(self) -> float:
        """First time the monitor saw the user in this visit."""
        return self.times[0]

    @property
    def logout_time(self) -> float:
        """Last time the monitor saw the user in this visit."""
        return self.times[-1]

    @property
    def travel_time(self) -> float:
        """The paper's *travel time*: total connection time to the land."""
        return self.logout_time - self.login_time

    @property
    def observation_count(self) -> int:
        """Number of snapshots in which the user appeared."""
        return len(self.times)

    def _step_lengths(self) -> np.ndarray:
        """Planar displacement per inter-observation step."""
        _, xyz = self.as_arrays()
        return np.hypot(np.diff(xyz[:, 0]), np.diff(xyz[:, 1]))

    def travel_length(self) -> float:
        """The paper's *travel length*: summed displacement login→logout."""
        return float(self._step_lengths().sum())

    def effective_travel_time(self, pause_epsilon: float = PAUSE_EPSILON) -> float:
        """The paper's *effective travel time*: time spent moving.

        An inter-observation interval counts as movement when the
        displacement across it exceeds ``pause_epsilon`` meters.
        """
        times, _ = self.as_arrays()
        moving = self._step_lengths() > pause_epsilon
        return float(np.diff(times)[moving].sum())

    def pause_time(self, pause_epsilon: float = PAUSE_EPSILON) -> float:
        """Connected-but-stationary time (complement of effective travel)."""
        return self.travel_time - self.effective_travel_time(pause_epsilon)

    def net_displacement(self) -> float:
        """Straight-line distance between login and logout points."""
        return distance(self.positions[0], self.positions[-1])


def extract_sessions(
    trace: Trace,
    gap_threshold: float | None = None,
) -> list[UserSession]:
    """Split every user's observations into visits.

    Parameters
    ----------
    trace:
        The monitored trace.
    gap_threshold:
        Maximum tolerated gap (seconds) between consecutive
        observations of the same visit.  Defaults to twice the trace's
        sampling interval.

    Returns
    -------
    list of UserSession
        Ordered by login time, then by user id for determinism.
    """
    if gap_threshold is None:
        gap_threshold = 2.0 * trace.metadata.tau
    if gap_threshold <= 0:
        raise ValueError(f"gap threshold must be positive, got {gap_threshold}")

    cols = trace.columns
    if cols.observation_count == 0:
        return []
    order = np.argsort(cols.user_ids, kind="stable")
    uids = cols.user_ids[order]
    times = cols.row_times()[order]
    xyz = cols.xyz[order]

    breaks = np.empty(len(uids), dtype=bool)
    breaks[0] = True
    breaks[1:] = (uids[1:] != uids[:-1]) | (np.diff(times) > gap_threshold)
    starts = np.flatnonzero(breaks)
    ends = np.append(starts[1:], len(uids))

    names = cols.users.names
    sessions = [
        UserSession._from_arrays(names[uids[lo]], times[lo:hi], xyz[lo:hi])
        for lo, hi in zip(starts, ends)
    ]
    sessions.sort(key=lambda s: (s.login_time, s.user))
    return sessions
