"""Session extraction: from snapshots to per-user visits.

The paper's trip metrics are defined per *visit*: travel length is the
distance covered "from login to logout", travel time is "the total
connection time to the SL land", and effective travel time excludes
pauses.  A monitor only sees presence at sampling instants, so a
session is reconstructed as a maximal run of observations whose gaps
stay below a threshold (default: twice the sampling interval — one
missed snapshot is tolerated, two mean the user left and came back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Position, distance
from repro.trace.trace import Trace

#: Displacement below which two consecutive observations count as a pause.
#: SL avatars idle in place jitter by centimeters; real walking covers
#: meters per sampling interval.
PAUSE_EPSILON = 0.5


@dataclass(frozen=True)
class UserSession:
    """One reconstructed visit of one user to a land."""

    user: str
    times: tuple[float, ...]
    positions: tuple[Position, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("a session needs at least one observation")
        if len(self.times) != len(self.positions):
            raise ValueError("times and positions must align")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("session observations must be strictly time-ordered")

    @property
    def login_time(self) -> float:
        """First time the monitor saw the user in this visit."""
        return self.times[0]

    @property
    def logout_time(self) -> float:
        """Last time the monitor saw the user in this visit."""
        return self.times[-1]

    @property
    def travel_time(self) -> float:
        """The paper's *travel time*: total connection time to the land."""
        return self.logout_time - self.login_time

    @property
    def observation_count(self) -> int:
        """Number of snapshots in which the user appeared."""
        return len(self.times)

    def travel_length(self) -> float:
        """The paper's *travel length*: summed displacement login→logout."""
        total = 0.0
        for a, b in zip(self.positions, self.positions[1:]):
            total += distance(a, b)
        return total

    def effective_travel_time(self, pause_epsilon: float = PAUSE_EPSILON) -> float:
        """The paper's *effective travel time*: time spent moving.

        An inter-observation interval counts as movement when the
        displacement across it exceeds ``pause_epsilon`` meters.
        """
        moving = 0.0
        for (t0, p0), (t1, p1) in zip(
            zip(self.times, self.positions),
            zip(self.times[1:], self.positions[1:]),
        ):
            if distance(p0, p1) > pause_epsilon:
                moving += t1 - t0
        return moving

    def pause_time(self, pause_epsilon: float = PAUSE_EPSILON) -> float:
        """Connected-but-stationary time (complement of effective travel)."""
        return self.travel_time - self.effective_travel_time(pause_epsilon)

    def net_displacement(self) -> float:
        """Straight-line distance between login and logout points."""
        return distance(self.positions[0], self.positions[-1])


def extract_sessions(
    trace: Trace,
    gap_threshold: float | None = None,
) -> list[UserSession]:
    """Split every user's observations into visits.

    Parameters
    ----------
    trace:
        The monitored trace.
    gap_threshold:
        Maximum tolerated gap (seconds) between consecutive
        observations of the same visit.  Defaults to twice the trace's
        sampling interval.

    Returns
    -------
    list of UserSession
        Ordered by login time, then by user id for determinism.
    """
    if gap_threshold is None:
        gap_threshold = 2.0 * trace.metadata.tau
    if gap_threshold <= 0:
        raise ValueError(f"gap threshold must be positive, got {gap_threshold}")

    observations: dict[str, list[tuple[float, Position]]] = {}
    for snapshot in trace:
        for user, position in snapshot.positions.items():
            observations.setdefault(user, []).append((snapshot.time, position))

    sessions: list[UserSession] = []
    for user, obs in observations.items():
        run_times: list[float] = []
        run_positions: list[Position] = []
        for time, position in obs:
            if run_times and time - run_times[-1] > gap_threshold:
                sessions.append(
                    UserSession(user, tuple(run_times), tuple(run_positions))
                )
                run_times, run_positions = [], []
            run_times.append(time)
            run_positions.append(position)
        sessions.append(UserSession(user, tuple(run_times), tuple(run_positions)))

    sessions.sort(key=lambda s: (s.login_time, s.user))
    return sessions
