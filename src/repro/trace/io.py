"""Trace serialization: CSV (flat records) and JSONL (one snapshot per line).

CSV is the interchange format — the same five columns
(``time,user,x,y,z``) a real crawler database dump would have, with
metadata carried in ``#``-prefixed header comments.  JSONL keeps the
snapshot structure explicit, which is convenient for streaming
consumers.  Both formats transparently support gzip via a ``.gz``
suffix.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import TextIO

from repro.geometry import Position
from repro.trace.records import PositionRecord, Snapshot
from repro.trace.trace import Trace, TraceMetadata

_METADATA_FIELDS = ("land_name", "width", "height", "tau", "source", "notes")


def _open_text(path: Path, mode: str) -> TextIO:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8", newline="")


def _metadata_header(metadata: TraceMetadata) -> list[str]:
    payload = {name: getattr(metadata, name) for name in _METADATA_FIELDS}
    return [f"# repro-trace-metadata: {json.dumps(payload)}"]


def _parse_metadata(line: str) -> TraceMetadata | None:
    prefix = "# repro-trace-metadata:"
    if not line.startswith(prefix):
        return None
    payload = json.loads(line[len(prefix):])
    return TraceMetadata(**payload)


def write_trace_csv(trace: Trace, path: str | Path) -> Path:
    """Write a trace as flat CSV records; returns the path written."""
    target = Path(path)
    with _open_text(target, "w") as handle:
        for header_line in _metadata_header(trace.metadata):
            handle.write(header_line + "\n")
        writer = csv.writer(handle)
        writer.writerow(["time", "user", "x", "y", "z"])
        for record in trace.records():
            writer.writerow(
                [f"{record.time:.3f}", record.user,
                 f"{record.x:.3f}", f"{record.y:.3f}", f"{record.z:.3f}"]
            )
    return target


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv`.

    Files without the metadata comment still load (with default
    metadata), so externally produced record dumps can be ingested.
    """
    source = Path(path)
    metadata: TraceMetadata | None = None
    records: list[PositionRecord] = []
    with _open_text(source, "r") as handle:
        header_seen = False
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parsed = _parse_metadata(line)
                if parsed is not None:
                    metadata = parsed
                continue
            if not header_seen:
                header_seen = True
                expected = ["time", "user", "x", "y", "z"]
                columns = [c.strip() for c in line.split(",")]
                if columns != expected:
                    raise ValueError(
                        f"unexpected CSV header {columns!r}; expected {expected!r}"
                    )
                continue
            row = next(csv.reader([line]))
            if len(row) != 5:
                raise ValueError(f"malformed CSV row: {line!r}")
            records.append(
                PositionRecord(
                    time=float(row[0]),
                    user=row[1],
                    x=float(row[2]),
                    y=float(row[3]),
                    z=float(row[4]),
                )
            )
    return Trace.from_records(records, metadata)


def write_trace_jsonl(trace: Trace, path: str | Path) -> Path:
    """Write a trace as JSONL: a metadata line then one snapshot per line."""
    target = Path(path)
    with _open_text(target, "w") as handle:
        meta = {name: getattr(trace.metadata, name) for name in _METADATA_FIELDS}
        handle.write(json.dumps({"metadata": meta}) + "\n")
        for snapshot in trace:
            payload = {
                "t": snapshot.time,
                "users": {
                    user: [pos.x, pos.y, pos.z]
                    for user, pos in snapshot.positions.items()
                },
            }
            handle.write(json.dumps(payload) + "\n")
    return target


def read_trace_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_jsonl`."""
    source = Path(path)
    metadata: TraceMetadata | None = None
    snapshots: list[Snapshot] = []
    with _open_text(source, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if "metadata" in payload:
                metadata = TraceMetadata(**payload["metadata"])
                continue
            positions = {
                user: Position(coords[0], coords[1], coords[2] if len(coords) > 2 else 0.0)
                for user, coords in payload["users"].items()
            }
            snapshots.append(Snapshot(payload["t"], positions))
    return Trace(snapshots, metadata)
