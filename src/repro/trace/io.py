"""Trace serialization: CSV (flat records) and JSONL (one snapshot per line).

CSV is the interchange format — the same five columns
(``time,user,x,y,z``) a real crawler database dump would have, with
metadata carried in ``#``-prefixed header comments.  JSONL keeps the
snapshot structure explicit, which is convenient for streaming
consumers.  Both formats transparently support gzip via a ``.gz``
suffix.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.trace.columnar import ColumnarBuilder, store_from_records
from repro.trace.trace import Trace, TraceMetadata

_METADATA_FIELDS = ("land_name", "width", "height", "tau", "source", "notes")


def _open_text(path: Path, mode: str) -> TextIO:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8", newline="")


def _metadata_header(metadata: TraceMetadata) -> list[str]:
    payload = {name: getattr(metadata, name) for name in _METADATA_FIELDS}
    return [f"# repro-trace-metadata: {json.dumps(payload)}"]


def _parse_metadata(line: str) -> TraceMetadata | None:
    prefix = "# repro-trace-metadata:"
    if not line.startswith(prefix):
        return None
    payload = json.loads(line[len(prefix):])
    return TraceMetadata(**payload)


def write_trace_csv(trace: Trace, path: str | Path) -> Path:
    """Write a trace as flat CSV records; returns the path written."""
    target = Path(path)
    with _open_text(target, "w") as handle:
        for header_line in _metadata_header(trace.metadata):
            handle.write(header_line + "\n")
        writer = csv.writer(handle)
        writer.writerow(["time", "user", "x", "y", "z"])
        cols = trace.columns
        names = cols.users.names
        row_times = cols.row_times()
        for i in range(cols.observation_count):
            writer.writerow(
                [f"{row_times[i]:.3f}", names[cols.user_ids[i]],
                 f"{cols.xyz[i, 0]:.3f}", f"{cols.xyz[i, 1]:.3f}", f"{cols.xyz[i, 2]:.3f}"]
            )
    return target


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv`.

    Files without the metadata comment still load (with default
    metadata), so externally produced record dumps can be ingested.
    """
    source = Path(path)
    metadata: TraceMetadata | None = None
    times: list[float] = []
    names: list[str] = []
    coords: list[tuple[float, float, float]] = []
    with _open_text(source, "r") as handle:
        header_seen = False
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parsed = _parse_metadata(line)
                if parsed is not None:
                    metadata = parsed
                continue
            if not header_seen:
                header_seen = True
                expected = ["time", "user", "x", "y", "z"]
                columns = [c.strip() for c in line.split(",")]
                if columns != expected:
                    raise ValueError(
                        f"unexpected CSV header {columns!r}; expected {expected!r}"
                    )
                continue
            row = next(csv.reader([line]))
            if len(row) != 5:
                raise ValueError(f"malformed CSV row: {line!r}")
            times.append(float(row[0]))
            names.append(row[1])
            coords.append((float(row[2]), float(row[3]), float(row[4])))
    store = store_from_records(
        np.asarray(times, dtype=np.float64),
        names,
        np.asarray(coords, dtype=np.float64).reshape(len(times), 3),
    )
    return Trace.from_columns(store, metadata)


def write_trace_jsonl(trace: Trace, path: str | Path) -> Path:
    """Write a trace as JSONL: a metadata line then one snapshot per line."""
    target = Path(path)
    with _open_text(target, "w") as handle:
        meta = {name: getattr(trace.metadata, name) for name in _METADATA_FIELDS}
        handle.write(json.dumps({"metadata": meta}) + "\n")
        cols = trace.columns
        names = cols.users.names
        for index in range(cols.snapshot_count):
            user_ids, xyz = cols.slice_of(index)
            payload = {
                "t": float(cols.times[index]),
                "users": {
                    names[uid]: [float(x), float(y), float(z)]
                    for uid, (x, y, z) in zip(user_ids, xyz)
                },
            }
            handle.write(json.dumps(payload) + "\n")
    return target


def read_trace_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_jsonl`."""
    source = Path(path)
    metadata: TraceMetadata | None = None
    builder = ColumnarBuilder()
    with _open_text(source, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if "metadata" in payload:
                metadata = TraceMetadata(**payload["metadata"])
                continue
            users = payload["users"]
            block = np.zeros((len(users), 3), dtype=np.float64)
            for i, coords in enumerate(users.values()):
                block[i, : len(coords)] = coords[:3]
            builder.append_snapshot(payload["t"], list(users), block)
    return Trace.from_columns(builder.build(), metadata)
