"""Trace serialization: CSV (flat records) and JSONL (one snapshot per line).

CSV is the interchange format — the same five columns
(``time,user,x,y,z``) a real crawler database dump would have, with
metadata carried in ``#``-prefixed header comments.  JSONL keeps the
snapshot structure explicit, which is convenient for streaming
consumers.  Both formats transparently support gzip via a ``.gz``
suffix.

The binary columnar format lives in :mod:`repro.trace.storage`
(``.rtrc``, memory-mapped); :func:`read_trace` / :func:`write_trace`
dispatch on the file suffix across all three formats.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.trace.columnar import ColumnarBuilder, ColumnarStore, store_from_records
from repro.trace.storage import read_trace_rtrc, write_trace_rtrc
from repro.trace.trace import Trace, TraceMetadata

_METADATA_FIELDS = ("land_name", "width", "height", "tau", "source", "notes")


def _open_text(path: Path, mode: str) -> TextIO:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8", newline="")


def _metadata_header(metadata: TraceMetadata) -> list[str]:
    payload = {name: getattr(metadata, name) for name in _METADATA_FIELDS}
    return [f"# repro-trace-metadata: {json.dumps(payload)}"]


def _parse_metadata(line: str) -> TraceMetadata | None:
    prefix = "# repro-trace-metadata:"
    if not line.startswith(prefix):
        return None
    payload = json.loads(line[len(prefix):])
    return TraceMetadata(**payload)


_EMPTY_SNAPSHOTS_PREFIX = "# repro-trace-empty-snapshots:"


def _empty_snapshots_header(trace: Trace) -> list[str]:
    """Comment line preserving zero-user snapshots in flat-record CSV.

    "The monitor looked and the land was empty" is data; without this
    line a CSV round trip would silently drop those timestamps (and
    inflate mean concurrency on re-load).  Times are quantized through
    the same ``%.3f`` the data rows use, so empty and occupied
    snapshots can never collide or reorder on re-load.
    """
    cols = trace.columns
    empty = cols.times[cols.counts() == 0]
    if not len(empty):
        return []
    quantized = [float(f"{t:.3f}") for t in empty.tolist()]
    return [f"{_EMPTY_SNAPSHOTS_PREFIX} {json.dumps(quantized)}"]


def _parse_empty_snapshots(line: str) -> list[float] | None:
    if not line.startswith(_EMPTY_SNAPSHOTS_PREFIX):
        return None
    return [float(t) for t in json.loads(line[len(_EMPTY_SNAPSHOTS_PREFIX):])]


def write_trace_csv(trace: Trace, path: str | Path) -> Path:
    """Write a trace as flat CSV records; returns the path written.

    Formatting is batched per column (one tight comprehension over each
    unboxed column, then a single C-level ``writer.writerows`` over the
    zipped columns) instead of boxing every observation through
    per-row numpy indexing — ~1.5x the rows/s of the row loop.
    """
    target = Path(path)
    with _open_text(target, "w") as handle:
        for header_line in _metadata_header(trace.metadata):
            handle.write(header_line + "\n")
        for header_line in _empty_snapshots_header(trace):
            handle.write(header_line + "\n")
        writer = csv.writer(handle)
        writer.writerow(["time", "user", "x", "y", "z"])
        cols = trace.columns
        if cols.observation_count:
            names = cols.users.names
            times_col = [f"{v:.3f}" for v in cols.row_times().tolist()]
            names_col = [names[i] for i in cols.user_ids.tolist()]
            x_col = [f"{v:.3f}" for v in cols.xyz[:, 0].tolist()]
            y_col = [f"{v:.3f}" for v in cols.xyz[:, 1].tolist()]
            z_col = [f"{v:.3f}" for v in cols.xyz[:, 2].tolist()]
            writer.writerows(zip(times_col, names_col, x_col, y_col, z_col))
    return target


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv`.

    Files without the metadata comment still load (with default
    metadata), so externally produced record dumps can be ingested.
    """
    source = Path(path)
    metadata: TraceMetadata | None = None
    empty_times: list[float] = []
    times: list[float] = []
    names: list[str] = []
    coords: list[tuple[float, float, float]] = []
    with _open_text(source, "r") as handle:
        header_seen = False
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parsed = _parse_metadata(line)
                if parsed is not None:
                    metadata = parsed
                empties = _parse_empty_snapshots(line)
                if empties is not None:
                    empty_times.extend(empties)
                continue
            if not header_seen:
                header_seen = True
                expected = ["time", "user", "x", "y", "z"]
                columns = [c.strip() for c in line.split(",")]
                if columns != expected:
                    raise ValueError(
                        f"unexpected CSV header {columns!r}; expected {expected!r}"
                    )
                continue
            row = next(csv.reader([line]))
            if len(row) != 5:
                raise ValueError(f"malformed CSV row: {line!r}")
            times.append(float(row[0]))
            names.append(row[1])
            coords.append((float(row[2]), float(row[3]), float(row[4])))
    store = store_from_records(
        np.asarray(times, dtype=np.float64),
        names,
        np.asarray(coords, dtype=np.float64).reshape(len(times), 3),
    )
    if empty_times:
        store = _with_empty_snapshots(store, empty_times)
    return Trace.from_columns(store, metadata)


def _with_empty_snapshots(store, empty_times: list[float]):
    """Splice zero-row snapshots into a store built from flat records.

    Empty snapshots own no observation rows, so only ``times`` and the
    CSR offsets change; the id and coordinate columns pass through.
    """
    extra = np.asarray(empty_times, dtype=np.float64)
    times = np.concatenate([store.times, extra])
    counts = np.concatenate(
        [np.diff(store.snapshot_offsets), np.zeros(len(extra), dtype=np.int64)]
    )
    order = np.argsort(times, kind="stable")
    offsets = np.zeros(len(times) + 1, dtype=np.int64)
    np.cumsum(counts[order], out=offsets[1:])
    return ColumnarStore(
        times[order], offsets, store.user_ids, store.xyz, store.users
    )


def write_trace_jsonl(trace: Trace, path: str | Path) -> Path:
    """Write a trace as JSONL: a metadata line then one snapshot per line."""
    target = Path(path)
    with _open_text(target, "w") as handle:
        meta = {name: getattr(trace.metadata, name) for name in _METADATA_FIELDS}
        handle.write(json.dumps({"metadata": meta}) + "\n")
        cols = trace.columns
        names = cols.users.names
        for index in range(cols.snapshot_count):
            user_ids, xyz = cols.slice_of(index)
            payload = {
                "t": float(cols.times[index]),
                "users": {
                    names[uid]: [float(x), float(y), float(z)]
                    for uid, (x, y, z) in zip(user_ids, xyz)
                },
            }
            handle.write(json.dumps(payload) + "\n")
    return target


def read_trace_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_jsonl`."""
    source = Path(path)
    metadata: TraceMetadata | None = None
    builder = ColumnarBuilder()
    with _open_text(source, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if "metadata" in payload:
                metadata = TraceMetadata(**payload["metadata"])
                continue
            users = payload["users"]
            block = np.zeros((len(users), 3), dtype=np.float64)
            for i, coords in enumerate(users.values()):
                block[i, : len(coords)] = coords[:3]
            builder.append_snapshot(payload["t"], list(users), block)
    return Trace.from_columns(builder.build(), metadata)


def trace_format(path: str | Path) -> str:
    """Serialization format implied by a path: ``rtrc``, ``jsonl`` or ``csv``.

    A trailing ``.gz`` is transparent for every format; anything that
    is neither ``.rtrc`` nor ``.jsonl`` is treated as CSV, matching the
    historical default.
    """
    name = Path(path).name
    if ".rtrc" in name:
        return "rtrc"
    if ".jsonl" in name:
        return "jsonl"
    return "csv"


def read_trace(path: str | Path) -> Trace:
    """Read a trace in any supported format, dispatching on the suffix.

    The format rules of :func:`trace_format` apply: ``.rtrc[.gz]`` is
    the binary columnar format (memory-mapped when not gzipped —
    loading costs a header parse and the data pages fault in lazily),
    ``.jsonl[.gz]`` is one snapshot per line, and anything else is
    flat-record CSV.  Only ``.rtrc`` avoids re-parsing every
    observation on every load; convert once (``slmob convert``) when
    a trace will be analyzed more than once.

    All formats return an equivalent :class:`~repro.trace.Trace`
    (pinned bit-for-bit by ``tests/property/test_io_roundtrip.py``),
    with one caveat: CSV quantizes coordinates and times through the
    ``%.3f`` text format.
    """
    fmt = trace_format(path)
    if fmt == "rtrc":
        return read_trace_rtrc(path)
    if fmt == "jsonl":
        return read_trace_jsonl(path)
    return read_trace_csv(path)


def write_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace in the format implied by the suffix; returns the path.

    Dispatches like :func:`read_trace`.  ``.rtrc`` writes go through
    a temp file plus atomic rename, so overwriting a store that other
    processes are memmapping is safe (they keep their old view); the
    text writers stream in place.  A trailing ``.gz`` gzips any
    format (a gzipped ``.rtrc`` loads in memory instead of
    memmapping, and cannot be appended to).  To *grow* a trace on
    disk instead of rewriting it, use
    :class:`~repro.trace.RtrcAppender`.
    """
    fmt = trace_format(path)
    if fmt == "rtrc":
        return write_trace_rtrc(trace, path)
    if fmt == "jsonl":
        return write_trace_jsonl(trace, path)
    return write_trace_csv(trace, path)
