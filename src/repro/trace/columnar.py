"""Columnar trace storage: interned user ids over flat, contiguous arrays.

This is the canonical in-memory layout behind :class:`~repro.trace.Trace`.
A trace of ``S`` snapshots holding ``N`` observations total is stored as

* ``times``            — ``(S,)`` float64, strictly increasing;
* ``snapshot_offsets`` — ``(S + 1,)`` int64, CSR-style row offsets:
  snapshot ``k`` owns rows ``snapshot_offsets[k]:snapshot_offsets[k+1]``;
* ``user_ids``         — ``(N,)`` int64, interned user identifiers;
* ``xyz``              — ``(N, 3)`` float64 coordinates.

User names are interned once into a :class:`UserInterner`; all hot-path
code (contact extraction, line-of-sight graphs, zone occupation) works
on the integer ids and only maps back to names at the API boundary.
Derived traces (windows, resamples) share the interner, so an id means
the same user across every view of a measurement.

The dict-backed :class:`~repro.trace.records.Snapshot` objects survive
as *views* materialized on demand; analysis code that wants arrays goes
straight to the store.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class UserInterner:
    """Bidirectional mapping between user names and dense integer ids.

    Ids are assigned in first-appearance order and never reused; the
    table only grows.  Sharing one interner across derived traces keeps
    ids stable under windowing and resampling.
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: list[str] = []
        self._ids: dict[str, int] = {}
        for name in names:
            self.intern(name)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def intern(self, name: str) -> int:
        """Id for ``name``, assigning the next free id on first sight."""
        uid = self._ids.get(name)
        if uid is None:
            uid = len(self._names)
            self._ids[name] = uid
            self._names.append(name)
        return uid

    def id_of(self, name: str) -> int:
        """Id of an already-interned name; raises ``KeyError`` otherwise."""
        return self._ids[name]

    def name_of(self, uid: int) -> str:
        """Name behind an id; raises ``IndexError`` for unknown ids."""
        return self._names[uid]

    @property
    def names(self) -> list[str]:
        """All interned names, indexed by id.  Treat as read-only."""
        return self._names


class ColumnarStore:
    """The flat-array backing of one trace.

    Construction validates the CSR invariants once; afterwards the
    store is treated as immutable (arrays are not defensively copied —
    the containing :class:`~repro.trace.Trace` is the unit of sharing).
    """

    __slots__ = ("times", "snapshot_offsets", "user_ids", "xyz", "users")

    def __init__(
        self,
        times: np.ndarray,
        snapshot_offsets: np.ndarray,
        user_ids: np.ndarray,
        xyz: np.ndarray,
        users: UserInterner,
    ) -> None:
        self.times = np.asarray(times, dtype=np.float64)
        self.snapshot_offsets = np.asarray(snapshot_offsets, dtype=np.int64)
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.xyz = np.asarray(xyz, dtype=np.float64).reshape(-1, 3)
        self.users = users
        self._validate()

    def _validate(self) -> None:
        if self.snapshot_offsets.shape != (len(self.times) + 1,):
            raise ValueError(
                f"snapshot_offsets must have {len(self.times) + 1} entries, "
                f"got {len(self.snapshot_offsets)}"
            )
        if len(self.times) and np.any(np.diff(self.times) <= 0):
            if len(np.unique(self.times)) != len(self.times):
                raise ValueError("trace contains duplicate snapshot timestamps")
            raise ValueError("snapshot times must be increasing")
        if self.snapshot_offsets[0] != 0 or self.snapshot_offsets[-1] != len(self.user_ids):
            raise ValueError("snapshot_offsets must span exactly the observation rows")
        if np.any(np.diff(self.snapshot_offsets) < 0):
            raise ValueError("snapshot_offsets must be non-decreasing")
        if len(self.user_ids) != len(self.xyz):
            raise ValueError("user_ids and xyz must have one row per observation")
        if len(self.user_ids) and (
            self.user_ids.min() < 0 or self.user_ids.max() >= len(self.users)
        ):
            raise ValueError("user id outside the interner's range")

    # -- shape ------------------------------------------------------------

    @property
    def snapshot_count(self) -> int:
        """Number of snapshots ``S``."""
        return len(self.times)

    @property
    def observation_count(self) -> int:
        """Total observation rows ``N``."""
        return len(self.user_ids)

    def counts(self) -> np.ndarray:
        """Users per snapshot — ``(S,)`` int64."""
        return np.diff(self.snapshot_offsets)

    # -- per-snapshot access ----------------------------------------------

    def slice_of(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(user_ids, xyz)`` array views of snapshot ``index``."""
        lo = self.snapshot_offsets[index]
        hi = self.snapshot_offsets[index + 1]
        return self.user_ids[lo:hi], self.xyz[lo:hi]

    def names_of(self, index: int) -> list[str]:
        """User names present in snapshot ``index``, in row order."""
        names = self.users.names
        lo = self.snapshot_offsets[index]
        hi = self.snapshot_offsets[index + 1]
        return [names[uid] for uid in self.user_ids[lo:hi]]

    # -- bulk access -------------------------------------------------------

    def row_times(self) -> np.ndarray:
        """Per-observation timestamp — ``(N,)`` float64."""
        return np.repeat(self.times, self.counts())

    def present_ids(self) -> np.ndarray:
        """Sorted unique user ids appearing in this store."""
        return np.unique(self.user_ids)

    def slice_snapshots(self, start: int, stop: int) -> "ColumnarStore":
        """Contiguous snapshot range ``[start, stop)`` as zero-copy views.

        Unlike :meth:`select`, which fancy-indexes (and therefore
        copies), a contiguous range keeps ``times`` / ``user_ids`` /
        ``xyz`` as basic slices of the parent arrays — a memmap-backed
        store stays lazy, so shard and window views of an on-disk trace
        touch no pages until an analysis reads them.
        """
        if not 0 <= start <= stop <= self.snapshot_count:
            raise ValueError(
                f"snapshot range [{start}, {stop}) outside 0..{self.snapshot_count}"
            )
        lo = int(self.snapshot_offsets[start])
        hi = int(self.snapshot_offsets[stop])
        # Rebasing the offsets copies S_range + 1 ints; the three data
        # columns stay views.
        offsets = self.snapshot_offsets[start : stop + 1] - lo
        return ColumnarStore(
            self.times[start:stop],
            offsets,
            self.user_ids[lo:hi],
            self.xyz[lo:hi],
            self.users,
        )

    def select(self, snapshot_indices: Sequence[int] | np.ndarray) -> "ColumnarStore":
        """New store holding only the given snapshots (interner shared).

        ``snapshot_indices`` must be strictly increasing, so the result
        keeps the time ordering invariant.
        """
        idx = np.asarray(snapshot_indices, dtype=np.int64)
        counts = np.diff(self.snapshot_offsets)[idx]
        offsets = np.zeros(len(idx) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if len(idx):
            starts = self.snapshot_offsets[idx]
            rows = _concat_aranges(starts, counts)
        else:
            rows = np.empty(0, dtype=np.int64)
        return ColumnarStore(
            self.times[idx], offsets, self.user_ids[rows], self.xyz[rows], self.users
        )


class ColumnarBuilder:
    """Accumulates snapshots and materializes a :class:`ColumnarStore`.

    Monitors, readers and synthetic-trace generators append rows here
    instead of building per-record dicts; ``build()`` sorts snapshots
    by time (stable within a snapshot) and validates once.
    """

    def __init__(self, users: UserInterner | None = None) -> None:
        # Explicit None test: an interner with no names yet is falsy.
        self.users = users if users is not None else UserInterner()
        self._times: list[float] = []
        self._counts: list[int] = []
        self._ids: list[np.ndarray] = []
        self._xyz: list[np.ndarray] = []

    @property
    def snapshot_count(self) -> int:
        return len(self._times)

    def append_snapshot(
        self,
        time: float,
        names: Sequence[str],
        coords: np.ndarray | Sequence[Sequence[float]],
    ) -> None:
        """Add one snapshot: user names plus an ``(n, 3)`` coordinate block."""
        ids = np.fromiter(
            (self.users.intern(name) for name in names),
            dtype=np.int64,
            count=len(names),
        )
        if len(set(ids.tolist())) != len(ids):
            seen: set[int] = set()
            for uid in ids.tolist():
                if uid in seen:
                    raise ValueError(
                        f"user {self.users.name_of(uid)!r} appears twice at t={time}"
                    )
                seen.add(uid)
        block = np.asarray(coords, dtype=np.float64).reshape(len(names), 3)
        self._times.append(float(time))
        self._counts.append(len(names))
        self._ids.append(ids)
        self._xyz.append(block)

    def append_ids(self, time: float, ids: np.ndarray, coords: np.ndarray) -> None:
        """Add one snapshot of already-interned ids (trusted, no dup check)."""
        self._times.append(float(time))
        self._counts.append(len(ids))
        self._ids.append(np.asarray(ids, dtype=np.int64))
        self._xyz.append(np.asarray(coords, dtype=np.float64).reshape(len(ids), 3))

    def build(self) -> ColumnarStore:
        """Sort by time and freeze into a store."""
        times = np.asarray(self._times, dtype=np.float64)
        order = np.argsort(times, kind="stable")
        counts = np.asarray(self._counts, dtype=np.int64)[order]
        offsets = np.zeros(len(order) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if self._ids:
            user_ids = np.concatenate([self._ids[k] for k in order])
            xyz = np.concatenate([self._xyz[k] for k in order])
        else:
            user_ids = np.empty(0, dtype=np.int64)
            xyz = np.empty((0, 3), dtype=np.float64)
        return ColumnarStore(times[order], offsets, user_ids, xyz, self.users)


def store_from_records(
    times: np.ndarray,
    names: Sequence[str],
    xyz: np.ndarray,
    users: UserInterner | None = None,
) -> ColumnarStore:
    """Build a store from flat per-observation records.

    ``times`` is ``(N,)``, ``names`` has ``N`` entries, ``xyz`` is
    ``(N, 3)``.  Records are grouped into snapshots by timestamp with a
    stable sort, so within-snapshot row order follows input order — the
    same convention dict grouping used.  A ``(time, user)`` pair seen
    twice raises ``ValueError``.
    """
    users = users if users is not None else UserInterner()
    times = np.asarray(times, dtype=np.float64)
    xyz = np.asarray(xyz, dtype=np.float64).reshape(len(times), 3)
    ids = np.fromiter(
        (users.intern(name) for name in names), dtype=np.int64, count=len(names)
    )
    order = np.argsort(times, kind="stable")
    times, ids, xyz = times[order], ids[order], xyz[order]
    snap_times, starts = np.unique(times, return_index=True)
    offsets = np.append(starts, len(times)).astype(np.int64)
    # Duplicate (time, user) detection on the grouped layout.
    if len(ids):
        snap_of_row = np.repeat(np.arange(len(snap_times)), np.diff(offsets))
        key = snap_of_row * (len(users) + 1) + ids
        unique_keys, first_rows = np.unique(key, return_index=True)
        if len(unique_keys) != len(ids):
            dup_rows = np.setdiff1d(np.arange(len(ids)), first_rows)
            row = int(dup_rows[0])
            raise ValueError(
                f"user {users.name_of(int(ids[row]))!r} appears twice "
                f"at t={float(times[row])}"
            )
    return ColumnarStore(snap_times, offsets, ids, xyz, users)


def empty_store(users: UserInterner | None = None) -> ColumnarStore:
    """A store with no snapshots (shares ``users`` when given)."""
    return ColumnarStore(
        np.empty(0, dtype=np.float64),
        np.zeros(1, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty((0, 3), dtype=np.float64),
        users if users is not None else UserInterner(),
    )


def name_ranks(names: "Sequence[str]") -> np.ndarray:
    """Rank of each interned name under lexicographic order.

    ``ranks[uid]`` is the position ``names[uid]`` would take in
    ``sorted(names)``.  Public result ordering follows *names* (sort
    keys like ``(start, pair)`` or ``(login, user)`` compare name
    strings) while the array kernels work on interner ids, whose
    numeric order is first-appearance — the ranks bridge the two
    without building any string tuples.
    """
    arr = np.asarray(names, dtype=object)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(len(arr), dtype=np.int64)
    ranks[order] = np.arange(len(arr), dtype=np.int64)
    return ranks


def _concat_aranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each start/count pair."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    keep = counts > 0
    starts = np.asarray(starts, dtype=np.int64)[keep]
    counts = counts[keep]
    ends = np.cumsum(counts)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    steps[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(steps)
