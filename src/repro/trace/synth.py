"""Hand-constructible synthetic traces.

These builders produce tiny traces whose contact structure is known in
closed form, so the analysis layer has known-answer tests: two users
crossing at a given time *must* yield exactly one contact of a given
length, orbiting users *must* never meet, and so on.  Examples and
docs also use them as minimal inputs.

All builders assemble the columnar arrays directly (ids, flat
coordinates) — no per-record dicts — which also makes
:func:`random_walk_trace` cheap enough to serve as the scaling
benchmark's workload generator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.columnar import ColumnarStore, UserInterner
from repro.trace.trace import Trace, TraceMetadata


def _metadata(tau: float, name: str) -> TraceMetadata:
    return TraceMetadata(land_name=name, tau=tau, source="synthetic")


def _dense_trace(
    users: list[str],
    times: np.ndarray,
    xyz_per_step: np.ndarray,
    metadata: TraceMetadata,
) -> Trace:
    """Trace where every user appears in every snapshot.

    ``xyz_per_step`` is ``(steps, n_users, 3)``; offsets and ids are
    the regular pattern of a fully dense trace.
    """
    steps, n = xyz_per_step.shape[0], len(users)
    interner = UserInterner(users)
    store = ColumnarStore(
        times=np.asarray(times, dtype=np.float64),
        snapshot_offsets=np.arange(steps + 1, dtype=np.int64) * n,
        user_ids=np.tile(np.arange(n, dtype=np.int64), steps),
        xyz=np.asarray(xyz_per_step, dtype=np.float64).reshape(steps * n, 3),
        users=interner,
    )
    return Trace.from_columns(store, metadata)


def constant_positions_trace(
    positions: dict[str, tuple[float, float]],
    steps: int,
    tau: float = 10.0,
) -> Trace:
    """Users standing still for ``steps`` snapshots.

    Any pair within range is in contact for the whole trace; any pair
    out of range never meets.
    """
    if steps < 1:
        raise ValueError(f"need at least one step, got {steps}")
    users = list(positions)
    frame = np.array(
        [[x, y, 0.0] for x, y in positions.values()], dtype=np.float64
    ).reshape(len(users), 3)
    xyz = np.broadcast_to(frame, (steps, len(users), 3))
    times = np.arange(steps, dtype=np.float64) * tau
    return _dense_trace(users, times, xyz, _metadata(tau, "synthetic-constant"))


def crossing_users_trace(
    steps: int = 61,
    tau: float = 10.0,
    speed: float = 1.0,
    lane_gap: float = 2.0,
) -> Trace:
    """Two users walking toward each other along parallel lanes.

    User ``a`` walks left→right along ``y = 100``; user ``b`` walks
    right→left along ``y = 100 + lane_gap``.  They approach, pass at
    the midpoint, and separate — producing exactly one contact interval
    for any communication range larger than ``lane_gap``, centred on
    the crossing snapshot.
    """
    if steps < 3:
        raise ValueError(f"need at least three steps, got {steps}")
    times = np.arange(steps, dtype=np.float64) * tau
    span = speed * tau * (steps - 1)
    xyz = np.zeros((steps, 2, 3), dtype=np.float64)
    xyz[:, 0, 0] = 128.0 - span / 2.0 + speed * times
    xyz[:, 0, 1] = 100.0
    xyz[:, 1, 0] = 128.0 + span / 2.0 - speed * times
    xyz[:, 1, 1] = 100.0 + lane_gap
    return _dense_trace(["a", "b"], times, xyz, _metadata(tau, "synthetic-crossing"))


def orbiting_users_trace(
    steps: int = 60,
    tau: float = 10.0,
    radius: float = 60.0,
    center: tuple[float, float] = (128.0, 128.0),
) -> Trace:
    """Two users on the same circle, always diametrically opposite.

    Their distance is constantly ``2 * radius``: they are always in
    contact for ranges above that and never below it — a clean fixture
    for range-threshold behaviour.
    """
    if steps < 1:
        raise ValueError(f"need at least one step, got {steps}")
    cx, cy = center
    times = np.arange(steps, dtype=np.float64) * tau
    angles = 2.0 * math.pi * np.arange(steps) / steps
    xyz = np.zeros((steps, 2, 3), dtype=np.float64)
    xyz[:, 0, 0] = cx + radius * np.cos(angles)
    xyz[:, 0, 1] = cy + radius * np.sin(angles)
    xyz[:, 1, 0] = cx - radius * np.cos(angles)
    xyz[:, 1, 1] = cy - radius * np.sin(angles)
    return _dense_trace(["a", "b"], times, xyz, _metadata(tau, "synthetic-orbit"))


def random_walk_trace(
    n_users: int,
    steps: int,
    rng: np.random.Generator,
    tau: float = 10.0,
    step_std: float = 5.0,
    size: float = 256.0,
) -> Trace:
    """Independent reflected Gaussian random walks on a square land.

    No structure is built in: this is the *null* mobility against which
    POI-driven traces are compared (random walks produce low clustering
    and short contact tails).
    """
    if n_users < 1 or steps < 1:
        raise ValueError("need at least one user and one step")
    users = [f"u{i:03d}" for i in range(n_users)]
    coords = rng.uniform(0.0, size, (n_users, 2))
    xyz = np.zeros((steps, n_users, 3), dtype=np.float64)
    for i in range(steps):
        xyz[i, :, :2] = coords
        coords = coords + rng.normal(0.0, step_std, (n_users, 2))
        # Reflect at the borders to keep walkers on the land.
        coords = np.abs(coords)
        over = coords > size
        coords[over] = 2.0 * size - coords[over]
        coords = np.clip(coords, 0.0, size)
    meta = TraceMetadata(
        land_name="synthetic-random-walk", width=size, height=size, tau=tau, source="synthetic"
    )
    times = np.arange(steps, dtype=np.float64) * tau
    return _dense_trace(users, times, xyz, meta)
