"""Hand-constructible synthetic traces.

These builders produce tiny traces whose contact structure is known in
closed form, so the analysis layer has known-answer tests: two users
crossing at a given time *must* yield exactly one contact of a given
length, orbiting users *must* never meet, and so on.  Examples and
docs also use them as minimal inputs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry import Position
from repro.trace.records import Snapshot
from repro.trace.trace import Trace, TraceMetadata


def _metadata(tau: float, name: str) -> TraceMetadata:
    return TraceMetadata(land_name=name, tau=tau, source="synthetic")


def constant_positions_trace(
    positions: dict[str, tuple[float, float]],
    steps: int,
    tau: float = 10.0,
) -> Trace:
    """Users standing still for ``steps`` snapshots.

    Any pair within range is in contact for the whole trace; any pair
    out of range never meets.
    """
    if steps < 1:
        raise ValueError(f"need at least one step, got {steps}")
    frozen = {user: Position(x, y) for user, (x, y) in positions.items()}
    snapshots = [Snapshot(i * tau, frozen) for i in range(steps)]
    return Trace(snapshots, _metadata(tau, "synthetic-constant"))


def crossing_users_trace(
    steps: int = 61,
    tau: float = 10.0,
    speed: float = 1.0,
    lane_gap: float = 2.0,
) -> Trace:
    """Two users walking toward each other along parallel lanes.

    User ``a`` walks left→right along ``y = 100``; user ``b`` walks
    right→left along ``y = 100 + lane_gap``.  They approach, pass at
    the midpoint, and separate — producing exactly one contact interval
    for any communication range larger than ``lane_gap``, centred on
    the crossing snapshot.
    """
    if steps < 3:
        raise ValueError(f"need at least three steps, got {steps}")
    snapshots = []
    span = speed * tau * (steps - 1)
    start_a = 128.0 - span / 2.0
    start_b = 128.0 + span / 2.0
    for i in range(steps):
        t = i * tau
        snapshots.append(
            Snapshot(
                t,
                {
                    "a": Position(start_a + speed * t, 100.0),
                    "b": Position(start_b - speed * t, 100.0 + lane_gap),
                },
            )
        )
    return Trace(snapshots, _metadata(tau, "synthetic-crossing"))


def orbiting_users_trace(
    steps: int = 60,
    tau: float = 10.0,
    radius: float = 60.0,
    center: tuple[float, float] = (128.0, 128.0),
) -> Trace:
    """Two users on the same circle, always diametrically opposite.

    Their distance is constantly ``2 * radius``: they are always in
    contact for ranges above that and never below it — a clean fixture
    for range-threshold behaviour.
    """
    if steps < 1:
        raise ValueError(f"need at least one step, got {steps}")
    cx, cy = center
    snapshots = []
    for i in range(steps):
        t = i * tau
        angle = 2.0 * math.pi * i / steps
        snapshots.append(
            Snapshot(
                t,
                {
                    "a": Position(cx + radius * math.cos(angle), cy + radius * math.sin(angle)),
                    "b": Position(cx - radius * math.cos(angle), cy - radius * math.sin(angle)),
                },
            )
        )
    return Trace(snapshots, _metadata(tau, "synthetic-orbit"))


def random_walk_trace(
    n_users: int,
    steps: int,
    rng: np.random.Generator,
    tau: float = 10.0,
    step_std: float = 5.0,
    size: float = 256.0,
) -> Trace:
    """Independent reflected Gaussian random walks on a square land.

    No structure is built in: this is the *null* mobility against which
    POI-driven traces are compared (random walks produce low clustering
    and short contact tails).
    """
    if n_users < 1 or steps < 1:
        raise ValueError("need at least one user and one step")
    users = [f"u{i:03d}" for i in range(n_users)]
    coords = rng.uniform(0.0, size, (n_users, 2))
    snapshots = []
    for i in range(steps):
        positions = {
            user: Position(float(coords[j, 0]), float(coords[j, 1]))
            for j, user in enumerate(users)
        }
        snapshots.append(Snapshot(i * tau, positions))
        coords = coords + rng.normal(0.0, step_std, (n_users, 2))
        # Reflect at the borders to keep walkers on the land.
        coords = np.abs(coords)
        over = coords > size
        coords[over] = 2.0 * size - coords[over]
        coords = np.clip(coords, 0.0, size)
    meta = TraceMetadata(
        land_name="synthetic-random-walk", width=size, height=size, tau=tau, source="synthetic"
    )
    return Trace(snapshots, meta)
