"""Hand-constructible synthetic traces.

These builders produce tiny traces whose contact structure is known in
closed form, so the analysis layer has known-answer tests: two users
crossing at a given time *must* yield exactly one contact of a given
length, orbiting users *must* never meet, and so on.  Examples and
docs also use them as minimal inputs.

All builders assemble the columnar arrays directly (ids, flat
coordinates) — no per-record dicts — which also makes
:func:`random_walk_trace` cheap enough to serve as the scaling
benchmark's workload generator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.columnar import ColumnarStore, UserInterner
from repro.trace.trace import Trace, TraceMetadata


def _metadata(tau: float, name: str) -> TraceMetadata:
    return TraceMetadata(land_name=name, tau=tau, source="synthetic")


def _dense_trace(
    users: list[str],
    times: np.ndarray,
    xyz_per_step: np.ndarray,
    metadata: TraceMetadata,
) -> Trace:
    """Trace where every user appears in every snapshot.

    ``xyz_per_step`` is ``(steps, n_users, 3)``; offsets and ids are
    the regular pattern of a fully dense trace.
    """
    steps, n = xyz_per_step.shape[0], len(users)
    interner = UserInterner(users)
    store = ColumnarStore(
        times=np.asarray(times, dtype=np.float64),
        snapshot_offsets=np.arange(steps + 1, dtype=np.int64) * n,
        user_ids=np.tile(np.arange(n, dtype=np.int64), steps),
        xyz=np.asarray(xyz_per_step, dtype=np.float64).reshape(steps * n, 3),
        users=interner,
    )
    return Trace.from_columns(store, metadata)


def constant_positions_trace(
    positions: dict[str, tuple[float, float]],
    steps: int,
    tau: float = 10.0,
) -> Trace:
    """Users standing still for ``steps`` snapshots.

    Any pair within range is in contact for the whole trace; any pair
    out of range never meets.
    """
    if steps < 1:
        raise ValueError(f"need at least one step, got {steps}")
    users = list(positions)
    frame = np.array(
        [[x, y, 0.0] for x, y in positions.values()], dtype=np.float64
    ).reshape(len(users), 3)
    xyz = np.broadcast_to(frame, (steps, len(users), 3))
    times = np.arange(steps, dtype=np.float64) * tau
    return _dense_trace(users, times, xyz, _metadata(tau, "synthetic-constant"))


def crossing_users_trace(
    steps: int = 61,
    tau: float = 10.0,
    speed: float = 1.0,
    lane_gap: float = 2.0,
) -> Trace:
    """Two users walking toward each other along parallel lanes.

    User ``a`` walks left→right along ``y = 100``; user ``b`` walks
    right→left along ``y = 100 + lane_gap``.  They approach, pass at
    the midpoint, and separate — producing exactly one contact interval
    for any communication range larger than ``lane_gap``, centred on
    the crossing snapshot.
    """
    if steps < 3:
        raise ValueError(f"need at least three steps, got {steps}")
    times = np.arange(steps, dtype=np.float64) * tau
    span = speed * tau * (steps - 1)
    xyz = np.zeros((steps, 2, 3), dtype=np.float64)
    xyz[:, 0, 0] = 128.0 - span / 2.0 + speed * times
    xyz[:, 0, 1] = 100.0
    xyz[:, 1, 0] = 128.0 + span / 2.0 - speed * times
    xyz[:, 1, 1] = 100.0 + lane_gap
    return _dense_trace(["a", "b"], times, xyz, _metadata(tau, "synthetic-crossing"))


def orbiting_users_trace(
    steps: int = 60,
    tau: float = 10.0,
    radius: float = 60.0,
    center: tuple[float, float] = (128.0, 128.0),
) -> Trace:
    """Two users on the same circle, always diametrically opposite.

    Their distance is constantly ``2 * radius``: they are always in
    contact for ranges above that and never below it — a clean fixture
    for range-threshold behaviour.
    """
    if steps < 1:
        raise ValueError(f"need at least one step, got {steps}")
    cx, cy = center
    times = np.arange(steps, dtype=np.float64) * tau
    angles = 2.0 * math.pi * np.arange(steps) / steps
    xyz = np.zeros((steps, 2, 3), dtype=np.float64)
    xyz[:, 0, 0] = cx + radius * np.cos(angles)
    xyz[:, 0, 1] = cy + radius * np.sin(angles)
    xyz[:, 1, 0] = cx - radius * np.cos(angles)
    xyz[:, 1, 1] = cy - radius * np.sin(angles)
    return _dense_trace(["a", "b"], times, xyz, _metadata(tau, "synthetic-orbit"))


def random_walk_trace(
    n_users: int,
    steps: int,
    rng: np.random.Generator,
    tau: float = 10.0,
    step_std: float = 5.0,
    size: float = 256.0,
) -> Trace:
    """Independent reflected Gaussian random walks on a square land.

    No structure is built in: this is the *null* mobility against which
    POI-driven traces are compared (random walks produce low clustering
    and short contact tails).
    """
    if n_users < 1 or steps < 1:
        raise ValueError("need at least one user and one step")
    users = [f"u{i:03d}" for i in range(n_users)]
    coords = rng.uniform(0.0, size, (n_users, 2))
    xyz = np.zeros((steps, n_users, 3), dtype=np.float64)
    for i in range(steps):
        xyz[i, :, :2] = coords
        coords = coords + rng.normal(0.0, step_std, (n_users, 2))
        # Reflect at the borders to keep walkers on the land.
        coords = np.abs(coords)
        over = coords > size
        coords[over] = 2.0 * size - coords[over]
        coords = np.clip(coords, 0.0, size)
    meta = TraceMetadata(
        land_name="synthetic-random-walk", width=size, height=size, tau=tau, source="synthetic"
    )
    times = np.arange(steps, dtype=np.float64) * tau
    return _dense_trace(users, times, xyz, meta)


def metaverse_trace(
    n_users: int,
    steps: int,
    rng: np.random.Generator,
    tau: float = 10.0,
    n_hotspots: int = 64,
    size: float = 4096.0,
    zipf_exponent: float = 1.2,
    scatter: float = 24.0,
    hop_probability: float = 0.02,
    pull: float = 0.15,
    step_std: float = 4.0,
) -> Trace:
    """A metaverse-scale synthetic world (Vasan et al. idiom).

    Avatars cluster around Zipf-popular venues
    (:class:`~repro.metaverse.hotspots.HotspotField`): each avatar
    scatters around its assigned venue, per step it is pulled back
    toward the venue centre (Ornstein–Uhlenbeck-style, strength
    ``pull``) with Gaussian jitter ``step_std`` (meters/step), and
    with probability ``hop_probability`` per step it teleports to a
    freshly drawn venue — the "hop between worlds" behaviour of
    measured metaverse platforms.  The result has the hot-spot
    concentration and heavy contact structure that a uniform random
    walk lacks, at whatever scale the caller asks for.

    Fully vectorized over ``(steps, n_users)``; at ~1M avatars the
    cost is a few numpy passes per step, which is what lets this
    double as the standard load generator for the service and
    distributed-backend benchmarks (reduced scale in CI, million-
    avatar scale by hand).

    Determinism: a fixed ``rng`` seed reproduces the trace
    bit-for-bit.
    """
    if n_users < 1 or steps < 1:
        raise ValueError("need at least one user and one step")
    # Imported lazily: repro.trace must stay importable without
    # touching the metaverse package (which imports repro.trace).
    from repro.metaverse.hotspots import HotspotField

    field = HotspotField.generate(
        n_hotspots, size, rng, zipf_exponent=zipf_exponent, scatter=scatter
    )
    digits = max(3, len(str(n_users - 1)))
    users = [f"av{i:0{digits}d}" for i in range(n_users)]
    assignment = field.assign(n_users, rng)
    coords = field.materialize(assignment, rng)
    xyz = np.zeros((steps, n_users, 3), dtype=np.float64)
    for i in range(steps):
        xyz[i, :, :2] = coords
        hops = rng.random(n_users) < hop_probability
        if hops.any():
            assignment[hops] = field.assign(int(hops.sum()), rng)
            coords[hops] = field.materialize(assignment[hops], rng)
        coords = coords + pull * (field.centers[assignment] - coords)
        coords = coords + rng.normal(0.0, step_std, (n_users, 2))
        np.clip(coords, 0.0, size, out=coords)
    meta = TraceMetadata(
        land_name="synthetic-metaverse",
        width=size,
        height=size,
        tau=tau,
        source="synthetic",
    )
    times = np.arange(steps, dtype=np.float64) * tau
    return _dense_trace(users, times, xyz, meta)
