"""Statistical machinery behind every figure of the paper.

Each figure is a CDF or CCDF of an empirical quantity, sometimes with a
power-law / exponential-cut-off reading; this package holds the
empirical distribution functions (:mod:`repro.stats.ecdf`), the
log-binning used for plotting heavy tails (:mod:`repro.stats.binning`),
maximum-likelihood fits with model comparison
(:mod:`repro.stats.fitting`), the random samplers used by the
generative substrate (:mod:`repro.stats.distributions`), and
descriptive summaries (:mod:`repro.stats.summary`).
"""

from repro.stats.ecdf import ECDF, ccdf_points, ecdf_points
from repro.stats.binning import linear_bins, log_bins, log_binned_histogram
from repro.stats.fitting import (
    FitResult,
    fit_exponential,
    fit_lognormal,
    fit_power_law,
    fit_truncated_power_law,
    compare_fits,
    ks_distance,
)
from repro.stats.distributions import (
    BoundedPareto,
    Exponential,
    LogNormal,
    TruncatedParetoExp,
    Uniform,
)
from repro.stats.summary import Summary, summarize

__all__ = [
    "ECDF",
    "ccdf_points",
    "ecdf_points",
    "linear_bins",
    "log_bins",
    "log_binned_histogram",
    "FitResult",
    "fit_exponential",
    "fit_lognormal",
    "fit_power_law",
    "fit_truncated_power_law",
    "compare_fits",
    "ks_distance",
    "BoundedPareto",
    "Exponential",
    "LogNormal",
    "TruncatedParetoExp",
    "Uniform",
    "Summary",
    "summarize",
]
