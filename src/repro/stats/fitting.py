"""Maximum-likelihood fits and model comparison.

The paper's central statistical reading of Fig. 1 is that contact and
inter-contact times follow "a first power-law phase and an exponential
cut-off phase".  The model behind that phrase is the *truncated power
law* ``p(x) ~ x^{-alpha} * exp(-lambda x)``; this module fits it by
maximum likelihood alongside the pure power-law, pure exponential and
lognormal alternatives, and compares them by AIC so experiments can
assert "truncated power law beats pure exponential and pure power law"
— the shape claim — without relying on visual inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np
from scipy import integrate, optimize, special


@dataclass(frozen=True)
class FitResult:
    """Outcome of a maximum-likelihood fit above a threshold ``xmin``."""

    model: str
    params: dict[str, float]
    xmin: float
    n: int
    log_likelihood: float
    cdf: Callable[[np.ndarray], np.ndarray] = field(repr=False, compare=False)

    @property
    def n_params(self) -> int:
        """Number of free parameters of the model."""
        return len(self.params)

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_params - 2.0 * self.log_likelihood

    def ks(self, sample: Sequence[float]) -> float:
        """Kolmogorov-Smirnov distance of the fit to a sample tail."""
        tail = _tail(sample, self.xmin)
        return ks_distance(tail, self.cdf)


def _tail(sample: Iterable[float], xmin: float) -> np.ndarray:
    """Sorted observations at or above ``xmin``."""
    values = np.asarray(list(sample), dtype=float)
    tail = np.sort(values[values >= xmin])
    if tail.size < 2:
        raise ValueError(f"need at least 2 observations >= xmin={xmin}, got {tail.size}")
    return tail


def ks_distance(sample: Sequence[float], cdf: Callable[[np.ndarray], np.ndarray]) -> float:
    """Sup-distance between a sample's ECDF and a model CDF."""
    values = np.sort(np.asarray(list(sample), dtype=float))
    if values.size == 0:
        raise ValueError("cannot compute KS distance of an empty sample")
    n = values.size
    model = np.asarray(cdf(values), dtype=float)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(np.max(np.maximum(np.abs(upper - model), np.abs(model - lower))))


def fit_exponential(sample: Sequence[float], xmin: float | None = None) -> FitResult:
    """Shifted exponential MLE: ``p(x) = lam * exp(-lam (x - xmin))``."""
    values = np.asarray(list(sample), dtype=float)
    if xmin is None:
        xmin = float(values.min())
    tail = _tail(values, xmin)
    excess_mean = float(tail.mean() - xmin)
    if excess_mean <= 0:
        raise ValueError("sample is degenerate at xmin; exponential fit undefined")
    lam = 1.0 / excess_mean
    loglik = tail.size * np.log(lam) - lam * float((tail - xmin).sum())

    def cdf(x: np.ndarray) -> np.ndarray:
        x_arr = np.asarray(x, dtype=float)
        return np.where(x_arr < xmin, 0.0, 1.0 - np.exp(-lam * (x_arr - xmin)))

    return FitResult("exponential", {"rate": lam}, float(xmin), tail.size, float(loglik), cdf)


def fit_power_law(sample: Sequence[float], xmin: float | None = None) -> FitResult:
    """Continuous Pareto MLE: ``p(x) ~ x^{-alpha}`` for ``x >= xmin``."""
    values = np.asarray(list(sample), dtype=float)
    if xmin is None:
        positive = values[values > 0]
        if positive.size == 0:
            raise ValueError("power-law fit needs positive observations")
        xmin = float(positive.min())
    if xmin <= 0:
        raise ValueError(f"xmin must be positive for a power law, got {xmin}")
    tail = _tail(values, xmin)
    log_ratio = float(np.log(tail / xmin).sum())
    if log_ratio <= 0:
        raise ValueError("sample is degenerate at xmin; power-law fit undefined")
    alpha = 1.0 + tail.size / log_ratio
    loglik = (
        tail.size * np.log((alpha - 1.0) / xmin)
        - alpha * float(np.log(tail / xmin).sum())
    )

    def cdf(x: np.ndarray) -> np.ndarray:
        x_arr = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            tail_prob = np.power(np.maximum(x_arr, xmin) / xmin, 1.0 - alpha)
        return np.where(x_arr < xmin, 0.0, 1.0 - tail_prob)

    return FitResult("power_law", {"alpha": alpha}, float(xmin), tail.size, float(loglik), cdf)


def fit_lognormal(sample: Sequence[float], xmin: float | None = None) -> FitResult:
    """Lognormal MLE on the tail above ``xmin`` (untruncated likelihood).

    The fit uses the plain lognormal density renormalized over
    ``[xmin, inf)``, matching how the other tail models are treated.
    """
    values = np.asarray(list(sample), dtype=float)
    if xmin is None:
        positive = values[values > 0]
        if positive.size == 0:
            raise ValueError("lognormal fit needs positive observations")
        xmin = float(positive.min())
    if xmin <= 0:
        raise ValueError(f"xmin must be positive for a lognormal, got {xmin}")
    tail = _tail(values, xmin)
    logs = np.log(tail)

    def negloglik(theta: np.ndarray) -> float:
        mu, sigma = theta
        if sigma <= 0:
            return np.inf
        norm = 1.0 - _lognorm_cdf(xmin, mu, sigma)
        if norm <= 0:
            return np.inf
        dens = (
            -np.log(tail * sigma * np.sqrt(2.0 * np.pi))
            - (logs - mu) ** 2 / (2.0 * sigma**2)
        )
        return float(-(dens.sum() - tail.size * np.log(norm)))

    start = np.array([logs.mean(), max(logs.std(), 1e-3)])
    result = optimize.minimize(negloglik, start, method="Nelder-Mead")
    mu, sigma = float(result.x[0]), float(abs(result.x[1]))
    norm = 1.0 - _lognorm_cdf(xmin, mu, sigma)

    def cdf(x: np.ndarray) -> np.ndarray:
        x_arr = np.asarray(x, dtype=float)
        raw = (
            _lognorm_cdf(np.maximum(x_arr, xmin), mu, sigma) - _lognorm_cdf(xmin, mu, sigma)
        ) / norm
        return np.where(x_arr < xmin, 0.0, raw)

    return FitResult(
        "lognormal",
        {"mu": mu, "sigma": sigma},
        float(xmin),
        tail.size,
        float(-result.fun),
        cdf,
    )


def _lognorm_cdf(x: np.ndarray | float, mu: float, sigma: float) -> np.ndarray | float:
    return 0.5 * (1.0 + special.erf((np.log(x) - mu) / (sigma * np.sqrt(2.0))))


def fit_truncated_power_law(
    sample: Sequence[float],
    xmin: float | None = None,
) -> FitResult:
    """MLE for ``p(x) = C * x^{-alpha} * exp(-lam x)`` on ``x >= xmin``.

    This is the "power-law phase + exponential cut-off" model the paper
    reads off Fig. 1.  The normalizing constant is evaluated by
    numerical quadrature, which is robust for the alpha < 1 regimes
    where the incomplete-gamma closed form misbehaves.
    """
    values = np.asarray(list(sample), dtype=float)
    if xmin is None:
        positive = values[values > 0]
        if positive.size == 0:
            raise ValueError("truncated power-law fit needs positive observations")
        xmin = float(positive.min())
    if xmin <= 0:
        raise ValueError(f"xmin must be positive, got {xmin}")
    tail = _tail(values, xmin)
    sum_log = float(np.log(tail).sum())
    sum_x = float(tail.sum())
    n = tail.size

    def log_norm(alpha: float, lam: float) -> float:
        # Z = integral_{xmin}^{inf} x^{-alpha} e^{-lam x} dx, computed in
        # a scaled form to stay finite for large lam * xmin.
        def integrand(u: float) -> float:
            x = xmin + u
            return (x / xmin) ** (-alpha) * np.exp(-lam * u)

        value, _err = integrate.quad(integrand, 0.0, np.inf, limit=200)
        if value <= 0:
            return np.inf
        # Z = xmin^{-alpha} e^{-lam xmin} * value
        return -alpha * np.log(xmin) - lam * xmin + np.log(value)

    def negloglik(theta: np.ndarray) -> float:
        alpha, lam = theta
        if lam <= 0 or alpha < 0:
            return np.inf
        ln_z = log_norm(alpha, lam)
        if not np.isfinite(ln_z):
            return np.inf
        return float(n * ln_z + alpha * sum_log + lam * sum_x)

    # Seed from the pure fits: power-law alpha and exponential rate.
    alpha0 = max(fit_power_law(tail, xmin).params["alpha"] - 0.5, 0.1)
    lam0 = fit_exponential(tail, xmin).params["rate"] * 0.5
    result = optimize.minimize(
        negloglik,
        np.array([alpha0, max(lam0, 1e-9)]),
        method="Nelder-Mead",
        options={"xatol": 1e-6, "fatol": 1e-6, "maxiter": 2000},
    )
    alpha, lam = float(result.x[0]), float(result.x[1])
    ln_z = log_norm(alpha, lam)

    def cdf(x: np.ndarray) -> np.ndarray:
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.zeros_like(x_arr)
        for i, xi in enumerate(x_arr):
            if xi <= xmin:
                out[i] = 0.0
                continue

            def integrand(u: float) -> float:
                point = xmin + u
                return (point / xmin) ** (-alpha) * np.exp(-lam * u)

            partial, _err = integrate.quad(integrand, 0.0, xi - xmin, limit=200)
            total = np.exp(ln_z + alpha * np.log(xmin) + lam * xmin)
            out[i] = min(partial / total, 1.0) if total > 0 else 1.0
        return out if np.asarray(x).ndim else float(out[0])

    return FitResult(
        "truncated_power_law",
        {"alpha": alpha, "rate": lam},
        float(xmin),
        n,
        float(-result.fun),
        cdf,
    )


def compare_fits(
    sample: Sequence[float],
    xmin: float | None = None,
    models: Sequence[str] = ("power_law", "exponential", "truncated_power_law", "lognormal"),
) -> list[FitResult]:
    """Fit the requested models on a common tail, best AIC first.

    When ``xmin`` is omitted it defaults to the smallest positive
    observation so every model sees the same data.
    """
    values = np.asarray(list(sample), dtype=float)
    if xmin is None:
        positive = values[values > 0]
        if positive.size == 0:
            raise ValueError("model comparison needs positive observations")
        xmin = float(positive.min())
    fitters = {
        "power_law": fit_power_law,
        "exponential": fit_exponential,
        "truncated_power_law": fit_truncated_power_law,
        "lognormal": fit_lognormal,
    }
    unknown = set(models) - set(fitters)
    if unknown:
        raise ValueError(f"unknown models: {sorted(unknown)}")
    results = [fitters[name](values, xmin) for name in models]
    results.sort(key=lambda fit: fit.aic)
    return results
