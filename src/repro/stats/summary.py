"""Descriptive summaries used in reports and experiment tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float
    maximum: float

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p10": self.p10,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(sample: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; raises on an empty sample."""
    values = np.asarray(list(sample), dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q = np.percentile(values, [10, 25, 50, 75, 90, 99])
    return Summary(
        n=int(values.size),
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        p10=float(q[0]),
        p25=float(q[1]),
        median=float(q[2]),
        p75=float(q[3]),
        p90=float(q[4]),
        p99=float(q[5]),
        maximum=float(values.max()),
    )
