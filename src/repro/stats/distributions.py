"""Random samplers for the generative substrate.

Every stochastic ingredient of the world model draws from one of these
distributions with an explicit ``numpy.random.Generator``:

* session durations — :class:`LogNormal` capped at the 4-hour maximum
  the paper observed;
* pause times at points of interest — :class:`BoundedPareto`
  (heavy-tailed dwell, the mechanism behind power-law contact times);
* trip legs for Lévy-walk avatars — :class:`BoundedPareto` step
  lengths;
* contact/arrival noise — :class:`Exponential` and :class:`Uniform`.

Each sampler validates its parameters eagerly so mis-calibrated land
presets fail at construction time, not mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Uniform:
    """Continuous uniform on ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise ValueError(f"need high > low, got [{self.low}, {self.high})")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one float (``size=None``) or an array of ``size`` floats."""
        return rng.uniform(self.low, self.high, size)

    @property
    def mean(self) -> float:
        """Expected value."""
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class Exponential:
    """Exponential with the given ``rate`` (events per unit time)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one float (``size=None``) or an array of ``size`` floats."""
        return rng.exponential(1.0 / self.rate, size)

    @property
    def mean(self) -> float:
        """Expected value, ``1 / rate``."""
        return 1.0 / self.rate


@dataclass(frozen=True)
class LogNormal:
    """Lognormal with log-mean ``mu``, log-std ``sigma`` and optional cap.

    The cap truncates by *resampling* (not clipping), so no probability
    mass piles up at the cap value; the paper's session lengths show a
    hard ~4 h maximum with 90 % of sessions under an hour, which a
    capped lognormal matches well.
    """

    mu: float
    sigma: float
    cap: float | None = None

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.cap is not None and self.cap <= 0:
            raise ValueError(f"cap must be positive, got {self.cap}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one float (``size=None``) or an array of ``size`` floats."""
        if size is None:
            value = float(rng.lognormal(self.mu, self.sigma))
            while self.cap is not None and value > self.cap:
                value = float(rng.lognormal(self.mu, self.sigma))
            return value
        values = rng.lognormal(self.mu, self.sigma, size)
        if self.cap is not None:
            over = values > self.cap
            # Resample only the rejected draws until all fit under the cap.
            while over.any():
                values[over] = rng.lognormal(self.mu, self.sigma, int(over.sum()))
                over = values > self.cap
        return values

    @property
    def uncapped_mean(self) -> float:
        """Mean of the *untruncated* lognormal (analytic form)."""
        return float(np.exp(self.mu + 0.5 * self.sigma**2))


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto (power-law) density ``~ x^{-alpha}`` truncated to ``[low, high]``.

    Sampled by inverse-CDF, so draws are exact and cheap.  ``alpha`` is
    the *density* exponent (``alpha > 0``, ``alpha != 1`` handled
    analytically, ``alpha == 1`` via the log form).
    """

    alpha: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.low <= 0:
            raise ValueError(f"low must be positive, got {self.low}")
        if not self.high > self.low:
            raise ValueError(f"need high > low, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one float (``size=None``) or an array of ``size`` floats."""
        u = rng.random(size)
        if self.alpha == 1.0:
            result = self.low * (self.high / self.low) ** u
        else:
            k = 1.0 - self.alpha
            low_k = self.low**k
            high_k = self.high**k
            result = (low_k + u * (high_k - low_k)) ** (1.0 / k)
        return float(result) if size is None else result

    @property
    def mean(self) -> float:
        """Analytic mean of the truncated density."""
        a, lo, hi = self.alpha, self.low, self.high
        if a == 1.0:
            return (hi - lo) / np.log(hi / lo)
        if a == 2.0:
            return np.log(hi / lo) * lo * hi / (hi - lo)
        k = 1.0 - a
        norm = (hi**k - lo**k) / k
        k2 = 2.0 - a
        return float(((hi**k2 - lo**k2) / k2) / norm)


@dataclass(frozen=True)
class TruncatedParetoExp:
    """Power law with exponential cut-off: ``~ x^{-alpha} e^{-rate x}``.

    Sampled by rejection from :class:`BoundedPareto` with acceptance
    ``exp(-rate * (x - low))`` — exact, and efficient whenever
    ``rate * (high - low)`` is moderate, which holds for the dwell-time
    scales used here (rate of order 1/1000 s, spans of a few thousand
    seconds).
    """

    alpha: float
    rate: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        # Delegate the remaining validation to the proposal distribution.
        BoundedPareto(self.alpha, self.low, self.high)

    def _proposal(self) -> BoundedPareto:
        return BoundedPareto(self.alpha, self.low, self.high)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one float (``size=None``) or an array of ``size`` floats."""
        proposal = self._proposal()
        if size is None:
            while True:
                x = proposal.sample(rng)
                if rng.random() < np.exp(-self.rate * (x - self.low)):
                    return x
        out = np.empty(size, dtype=float)
        filled = 0
        while filled < size:
            batch = max(size - filled, 16)
            candidates = proposal.sample(rng, batch)
            accept = rng.random(batch) < np.exp(-self.rate * (candidates - self.low))
            accepted = candidates[accept]
            take = min(accepted.size, size - filled)
            out[filled:filled + take] = accepted[:take]
            filled += take
        return out
