"""Histogram binning helpers.

Heavy-tailed samples (contact and inter-contact times) are plotted on
log-log axes; log-spaced bins keep a roughly constant number of bins
per decade, which is how the paper's Fig. 1 panels span 10^1..10^5
seconds legibly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def linear_bins(low: float, high: float, count: int) -> np.ndarray:
    """``count`` equal-width bins over ``[low, high]`` (count+1 edges)."""
    if count < 1:
        raise ValueError(f"need at least one bin, got {count}")
    if not high > low:
        raise ValueError(f"empty range [{low}, {high}]")
    return np.linspace(low, high, count + 1)


def log_bins(low: float, high: float, per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced bin edges from ``low`` to ``high``.

    ``per_decade`` controls resolution.  Both bounds must be positive;
    the last edge always reaches ``high`` even when the final bin is
    narrower than the nominal ratio.
    """
    if low <= 0 or high <= 0:
        raise ValueError("log bins need positive bounds")
    if not high > low:
        raise ValueError(f"empty range [{low}, {high}]")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    decades = np.log10(high / low)
    count = max(1, int(np.ceil(decades * per_decade)))
    edges = np.logspace(np.log10(low), np.log10(high), count + 1)
    edges[-1] = high
    return edges


def log_binned_histogram(
    sample: Sequence[float],
    per_decade: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """Density histogram of a positive sample on log-spaced bins.

    Returns ``(centers, density)`` where density is normalized by bin
    width and total count, so a power law appears as a straight line on
    log-log axes.  Zero or negative observations are rejected.
    """
    values = np.asarray(list(sample), dtype=float)
    if values.size == 0:
        raise ValueError("cannot bin an empty sample")
    if (values <= 0).any():
        raise ValueError("log-binned histogram needs strictly positive values")
    low, high = values.min(), values.max()
    if low == high:
        # Degenerate single-value sample: one bin centred on the value.
        return np.array([low]), np.array([1.0])
    edges = log_bins(low, high, per_decade)
    counts, _ = np.histogram(values, bins=edges)
    widths = np.diff(edges)
    centers = np.sqrt(edges[:-1] * edges[1:])
    density = counts / (values.size * widths)
    return centers, density
