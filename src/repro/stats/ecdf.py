"""Empirical distribution functions.

Every figure in the paper is either a CDF (``F(x)``) or a complementary
CDF (``1 - F(x)``) of an empirical sample.  :class:`ECDF` wraps a
sample once and answers both, plus quantiles, with numpy-vectorized
evaluation.  The convention is the right-continuous step function
``F(x) = P[X <= x]`` — the standard empirical CDF — so the CCDF is
``P[X > x]``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class ECDF:
    """Empirical CDF of a one-dimensional sample.

    Parameters
    ----------
    sample:
        Any iterable of real values; it is copied and sorted once.
        NaNs are rejected, infinities are allowed (they participate in
        ordering as usual).
    """

    def __init__(self, sample: Iterable[float]) -> None:
        values = np.asarray(list(sample), dtype=float)
        if values.size == 0:
            raise ValueError("cannot build an ECDF from an empty sample")
        if np.isnan(values).any():
            raise ValueError("sample contains NaN")
        self._sorted = np.sort(values)

    # -- basic accessors ----------------------------------------------

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self._sorted.size)

    @property
    def values(self) -> np.ndarray:
        """The sorted sample (a copy)."""
        return self._sorted.copy()

    @property
    def min(self) -> float:
        """Smallest observation."""
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        """Largest observation."""
        return float(self._sorted[-1])

    # -- evaluation ---------------------------------------------------

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """``P[X <= x]`` evaluated at scalar or array ``x``."""
        ranks = np.searchsorted(self._sorted, np.asarray(x, dtype=float), side="right")
        result = ranks / self.n
        return float(result) if np.isscalar(x) else result

    def ccdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """``P[X > x]`` — the complementary CDF plotted in Fig. 1 and 2."""
        value = self.cdf(x)
        return 1.0 - value

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        return self.cdf(x)

    def quantile(self, q: float | np.ndarray) -> float | np.ndarray:
        """Inverse CDF with the lower-value convention.

        ``quantile(0.5)`` is the median; ``quantile(0.9)`` is the 90th
        percentile the paper quotes for travel lengths.  Uses the
        inverse of the right-continuous ECDF (type-1 quantile):
        the smallest sample value ``v`` with ``F(v) >= q``.
        """
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantile level must lie in [0, 1]")
        idx = np.ceil(q_arr * self.n).astype(int) - 1
        idx = np.clip(idx, 0, self.n - 1)
        result = self._sorted[idx]
        return float(result) if np.isscalar(q) else result

    @property
    def median(self) -> float:
        """The 0.5 quantile (lower-median convention)."""
        return float(self.quantile(0.5))

    def survival_at(self, x: float) -> float:
        """Convenience scalar CCDF (reads better in assertions)."""
        return float(self.ccdf(x))

    # -- plot-ready steps ----------------------------------------------

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique sorted values and CDF heights at them."""
        xs, counts = np.unique(self._sorted, return_counts=True)
        heights = np.cumsum(counts) / self.n
        return xs, heights

    def ccdf_steps(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique sorted values and CCDF heights *before* each value.

        The returned height at ``x`` is ``P[X >= x]``, the convention
        used when plotting CCDFs on log-log axes (so the first point
        sits at height 1).
        """
        xs, counts = np.unique(self._sorted, return_counts=True)
        heights = 1.0 - (np.cumsum(counts) - counts) / self.n
        return xs, heights


def ecdf_points(sample: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """One-shot ``(x, F(x))`` step coordinates for a sample."""
    return ECDF(sample).steps()


def ccdf_points(sample: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """One-shot ``(x, P[X >= x])`` step coordinates for a sample."""
    return ECDF(sample).ccdf_steps()
