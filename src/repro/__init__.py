"""repro — a reproduction of *Characterizing User Mobility in Second Life*.

The package rebuilds the paper's entire measurement stack as an
offline, deterministic system:

* :mod:`repro.metaverse` — a generative Second Life substrate (lands,
  avatars, session churn, points of interest, events);
* :mod:`repro.mobility` — the mobility models avatars follow;
* :mod:`repro.monitors` — the two measurement architectures from the
  paper: the external crawler and the in-world sensor network;
* :mod:`repro.trace` — the trace data model and I/O;
* :mod:`repro.core` — the paper's analysis: contact statistics,
  line-of-sight graphs, spatial metrics;
* :mod:`repro.dtn` — trace-driven DTN forwarding replay, the paper's
  motivating application;
* :mod:`repro.lands` — calibrated presets of the three target lands;
* :mod:`repro.social` — the §5 future work: the relation graph of
  acquaintances;
* :mod:`repro.experiments` — one runner per paper figure/table.

Quickstart::

    from repro.lands import dance_island
    from repro.monitors import Crawler
    from repro.core import TraceAnalyzer

    world = dance_island().build(seed=7)
    trace = Crawler(tau=10.0).monitor(world, duration=3600.0)
    analyzer = TraceAnalyzer(trace)
    print(analyzer.contact_times(10.0).median)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
