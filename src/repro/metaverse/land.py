"""Lands (islands): the unit of space the paper monitors.

A land is a 256 x 256 m region by default.  Its access policy governs
what a monitoring architecture may do there — the crux of §2 of the
paper: objects cannot be deployed on private lands at all, expire
after a land-dependent lifetime on public lands, and only the crawler
(which connects as a regular user) is unrestricted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Position
from repro.mobility.poi import PointOfInterest

#: Second Life's default region footprint, meters.
DEFAULT_SIZE = 256.0

#: Maximum concurrent avatars an SL region sustains ("as of today,
#: roughly 100 concurrent users per land" — §2).
DEFAULT_MAX_CONCURRENT = 100


class AccessPolicy(enum.Enum):
    """What outsiders may do on a land."""

    PUBLIC = "public"
    PRIVATE = "private"
    SANDBOX = "sandbox"

    @property
    def allows_object_deployment(self) -> bool:
        """Private lands forbid object creation without authorization."""
        return self is not AccessPolicy.PRIVATE

    @property
    def objects_expire(self) -> bool:
        """On public lands, deployed objects auto-delete after a lifetime."""
        return self is AccessPolicy.PUBLIC


@dataclass
class Land:
    """A monitorable SL region.

    Parameters
    ----------
    name:
        Display name ("Dance Island").
    width, height:
        Footprint in meters; SL defaults to 256 x 256.
    policy:
        Access policy; drives monitor capabilities.
    object_lifetime:
        Seconds before a deployed object expires on a
        :attr:`AccessPolicy.PUBLIC` land ("land dependent" in the
        paper).  Ignored elsewhere.
    pois:
        The land's points of interest (dance floor, bar, spawn arena).
    max_concurrent:
        Region population cap; arrivals beyond it are rejected.
    """

    name: str
    width: float = DEFAULT_SIZE
    height: float = DEFAULT_SIZE
    policy: AccessPolicy = AccessPolicy.PUBLIC
    object_lifetime: float = 3600.0
    pois: list[PointOfInterest] = field(default_factory=list)
    max_concurrent: int = DEFAULT_MAX_CONCURRENT

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"land must have positive size, got {self.width}x{self.height}")
        if self.object_lifetime <= 0:
            raise ValueError(f"object lifetime must be positive, got {self.object_lifetime}")
        if self.max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {self.max_concurrent}")
        for poi in self.pois:
            if not self.contains(poi.center):
                raise ValueError(f"POI {poi.name!r} lies outside land {self.name!r}")

    def contains(self, position: Position) -> bool:
        """True when a point lies inside the land footprint."""
        return 0.0 <= position.x <= self.width and 0.0 <= position.y <= self.height

    def clamp(self, position: Position) -> Position:
        """Fold a point back onto the land (teleport overshoot guard)."""
        return Position(
            min(max(position.x, 0.0), self.width),
            min(max(position.y, 0.0), self.height),
            position.z,
        )

    @property
    def area(self) -> float:
        """Footprint area in square meters."""
        return self.width * self.height

    def poi_named(self, name: str) -> PointOfInterest:
        """Look up a POI by name; raises ``KeyError`` when missing."""
        for poi in self.pois:
            if poi.name == name:
                return poi
        raise KeyError(name)

    def with_poi(self, poi: PointOfInterest) -> "Land":
        """Return a copy of the land with one more POI (events use this)."""
        return Land(
            name=self.name,
            width=self.width,
            height=self.height,
            policy=self.policy,
            object_lifetime=self.object_lifetime,
            pois=[*self.pois, poi],
            max_concurrent=self.max_concurrent,
        )
