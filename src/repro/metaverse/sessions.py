"""Arrival and departure of users: the population process.

Unique-visitor counts and mean concurrency — the paper's trace summary
(1568 users / 13 concurrent on Apfel Land, 3347 / 34 on Dance Island,
2656 / 65 on Isle of View) — are produced by two ingredients:

* a *non-homogeneous Poisson* arrival process with a diurnal rate
  profile (virtual worlds breathe with their players' time zones);
* a heavy-tailed session-duration law capped at 4 hours — the paper:
  "the longest log-in time for a user was around 4 hours while 90 % of
  users are logged in for less than 1 hour".

By Little's law the mean concurrency is (arrival rate) x (mean
session), which is how presets are calibrated; see
:mod:`repro.lands.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.stats import LogNormal

#: The paper's observed session-duration cap, seconds (~4 hours).
MAX_SESSION_SECONDS = 4.0 * 3600.0

#: A flat diurnal profile (24 multipliers, one per hour-of-day).
FLAT_PROFILE = (1.0,) * 24

#: A gentle evening-peaked profile typical of entertainment lands.
#: Normalized to mean exactly 1.0 so ``hourly_rate`` stays the true
#: daily average regardless of the shape.
_EVENING_RAW = (
    0.5, 0.4, 0.35, 0.3, 0.3, 0.35,
    0.45, 0.6, 0.7, 0.8, 0.9, 1.0,
    1.05, 1.1, 1.1, 1.15, 1.2, 1.35,
    1.5, 1.7, 1.8, 1.6, 1.2, 0.8,
)
EVENING_PROFILE = tuple(v * 24.0 / sum(_EVENING_RAW) for v in _EVENING_RAW)


@dataclass(frozen=True)
class PlannedVisit:
    """One future login: who arrives, when, and for how long."""

    user_id: str
    arrival_time: float
    duration: float

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.arrival_time}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    @property
    def departure_time(self) -> float:
        """When the user logs out (absent earlier disconnection)."""
        return self.arrival_time + self.duration


class SessionProcess:
    """Generates the visit schedule for a land.

    Parameters
    ----------
    hourly_rate:
        Mean *first* arrivals (new unique users) per hour at profile
        multiplier 1.0.
    session_law:
        Session-duration sampler; defaults to a lognormal capped at
        the 4-hour maximum, with median ~17 min so that ~90 % of
        sessions stay under an hour.
    diurnal_profile:
        24 per-hour multipliers applied cyclically to the base rate.
    user_prefix:
        Identifier prefix (handy when mixing populations, e.g.
        ``"camper"`` vs ``"visitor"``).
    revisit_probability:
        Chance that a user logs in again after a visit ends.  Returning
        users are what produces the long inter-contact times real
        traces show — a pair separated by a logout re-meets only when
        both are back on the land.
    revisit_gap:
        Distribution of the offline gap between a departure and the
        same user's next login, seconds.
    """

    def __init__(
        self,
        hourly_rate: float,
        session_law: LogNormal | None = None,
        diurnal_profile: Sequence[float] = FLAT_PROFILE,
        user_prefix: str = "user",
        revisit_probability: float = 0.0,
        revisit_gap: LogNormal | None = None,
    ) -> None:
        if hourly_rate <= 0:
            raise ValueError(f"hourly rate must be positive, got {hourly_rate}")
        if len(diurnal_profile) != 24:
            raise ValueError(
                f"diurnal profile needs 24 hourly multipliers, got {len(diurnal_profile)}"
            )
        if min(diurnal_profile) < 0:
            raise ValueError("diurnal multipliers must be non-negative")
        if max(diurnal_profile) == 0:
            raise ValueError("diurnal profile cannot be all zeros")
        if not 0.0 <= revisit_probability < 1.0:
            raise ValueError(
                f"revisit probability must be in [0, 1), got {revisit_probability}"
            )
        self.hourly_rate = float(hourly_rate)
        # Median ~13 min, 90th percentile ~51 min, hard cap 4 h —
        # the login-time shape the paper reports in §4.
        self.session_law = session_law or LogNormal(
            mu=np.log(800.0), sigma=1.05, cap=MAX_SESSION_SECONDS
        )
        self.diurnal_profile = tuple(float(m) for m in diurnal_profile)
        self.user_prefix = user_prefix
        self.revisit_probability = float(revisit_probability)
        self.revisit_gap = revisit_gap or LogNormal(
            mu=np.log(2400.0), sigma=0.9, cap=6.0 * 3600.0
        )

    def rate_at(self, t: float) -> float:
        """Instantaneous first-arrival rate (users/second) at time ``t``."""
        hour = int(t // 3600.0) % 24
        return self.hourly_rate * self.diurnal_profile[hour] / 3600.0

    @property
    def peak_rate(self) -> float:
        """Upper bound of the rate function, users/second (for thinning)."""
        return self.hourly_rate * max(self.diurnal_profile) / 3600.0

    def schedule(
        self,
        duration: float,
        rng: np.random.Generator,
        start: float = 0.0,
        boost: "Callable[[float], float] | None" = None,
        serial_start: int = 0,
    ) -> list[PlannedVisit]:
        """All visits of users whose *first* login falls in ``[start, start+duration)``.

        First arrivals are drawn by Lewis-Shedler thinning of the
        diurnal rate (optionally multiplied by ``boost(t)``, which is
        how scheduled events inflate arrivals); durations are
        independent draws from the session law; each visit then chains
        re-visits of the same user with ``revisit_probability``.
        Sessions may extend past the window — the monitor simply stops
        observing them, exactly as the paper's 24 h window truncates
        real sessions.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        visits: list[PlannedVisit] = []
        peak = self.peak_rate
        peak_boost = 1.0
        if boost is not None:
            # The thinning envelope must dominate the boosted rate.
            peak_boost = max(boost(start + s) for s in np.linspace(0, duration, 97))
        envelope = peak * peak_boost
        end = start + duration
        t = start
        serial = serial_start
        while True:
            t += float(rng.exponential(1.0 / envelope))
            if t >= end:
                break
            rate = self.rate_at(t) * (boost(t) if boost is not None else 1.0)
            if rng.random() * envelope <= rate:
                serial += 1
                user_id = f"{self.user_prefix}-{serial:05d}"
                visits.extend(self._visit_chain(user_id, t, rng))
        visits.sort(key=lambda v: v.arrival_time)
        return visits

    def _visit_chain(
        self,
        user_id: str,
        first_arrival: float,
        rng: np.random.Generator,
    ) -> Iterator[PlannedVisit]:
        """The first visit plus any chained re-visits of one user."""
        arrival = first_arrival
        while True:
            visit = PlannedVisit(
                user_id=user_id,
                arrival_time=arrival,
                duration=float(self.session_law.sample(rng)),
            )
            yield visit
            if rng.random() >= self.revisit_probability:
                return
            arrival = visit.departure_time + float(self.revisit_gap.sample(rng))

    @property
    def mean_visits_per_user(self) -> float:
        """Expected logins per unique user (geometric in the revisit odds)."""
        return 1.0 / (1.0 - self.revisit_probability)

    def expected_unique_users(self, duration: float) -> float:
        """Mean number of unique users first arriving within ``duration``."""
        whole_hours = int(duration // 3600.0)
        remainder = duration - whole_hours * 3600.0
        total = sum(
            self.diurnal_profile[h % 24] for h in range(whole_hours)
        ) * self.hourly_rate
        total += self.diurnal_profile[whole_hours % 24] * self.hourly_rate * (
            remainder / 3600.0
        )
        return total


@dataclass
class VisitIterator:
    """Replay a pre-computed schedule in time order."""

    visits: list[PlannedVisit] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.visits = sorted(self.visits, key=lambda v: v.arrival_time)
        self._cursor = 0

    def due(self, now: float) -> Iterator[PlannedVisit]:
        """Yield every visit whose arrival time has passed."""
        while self._cursor < len(self.visits) and self.visits[self._cursor].arrival_time <= now:
            yield self.visits[self._cursor]
            self._cursor += 1

    @property
    def exhausted(self) -> bool:
        """True when every visit has been yielded."""
        return self._cursor >= len(self.visits)
