"""The world engine: a land, its population, and a 1-second clock.

The engine is deliberately simple — a fixed-step loop — because the
measurement methodology depends on *when* state is observed, not on
event-driven efficiency: the paper's crawler samples every τ = 10 s
while avatars move continuously, so contacts shorter than τ can be
missed.  Simulating at finer resolution than the monitors keeps that
sampling error in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Position, distance
from repro.metaverse.avatar import Avatar, AvatarState
from repro.metaverse.chat import ChatChannel
from repro.metaverse.events import ScheduledEvent
from repro.metaverse.land import Land
from repro.metaverse.sessions import PlannedVisit, SessionProcess
from repro.mobility import MobilityModel


@dataclass
class Population:
    """A class of users sharing an arrival process and a mobility law.

    ``event_model`` (optional) replaces ``model`` for users who log in
    while a scheduled event is active — event-goers head to the venue.
    ``sits_on_arrival`` models money-land campers: the avatar sits as
    soon as it materializes, so monitors read the SL sitting artefact
    ``{0,0,0}`` for it (the reason the paper avoided such lands).
    """

    name: str
    process: SessionProcess
    model: MobilityModel
    event_model: MobilityModel | None = None
    sits_on_arrival: bool = False


@dataclass
class WorldStats:
    """Counters the engine maintains while running."""

    logins: int = 0
    logouts: int = 0
    rejected_at_capacity: int = 0
    attraction_redirects: int = 0


@dataclass
class _Observer:
    """A monitor-controlled avatar present on the land (the crawler)."""

    avatar: Avatar
    conspicuous: bool


class World:
    """Discrete-time simulation of one land.

    Parameters
    ----------
    land:
        The region to simulate.
    populations:
        One or more user populations (visitors, campers, ...).
    events:
        Scheduled events; they boost arrivals and redirect event-time
        logins to the venue (see :class:`ScheduledEvent`).
    seed:
        Seed for the world's private random generator.
    dt:
        Clock resolution in seconds; 1 s by default.
    attraction_probability:
        Per-second chance that an avatar within ``attraction_range`` of
        a *conspicuous* observer abandons its current movement and
        walks toward it — the perturbation the authors observed with
        their naive crawler.
    attraction_range:
        Distance within which a conspicuous observer draws attention.
    """

    def __init__(
        self,
        land: Land,
        populations: list[Population],
        events: tuple[ScheduledEvent, ...] | list[ScheduledEvent] = (),
        seed: int = 0,
        dt: float = 1.0,
        attraction_probability: float = 0.004,
        attraction_range: float = 96.0,
        start_time: float = 0.0,
    ) -> None:
        if not populations:
            raise ValueError("a world needs at least one population")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if not 0.0 <= attraction_probability <= 1.0:
            raise ValueError(
                f"attraction probability must be in [0, 1], got {attraction_probability}"
            )
        if start_time < 0:
            raise ValueError(f"start time must be >= 0, got {start_time}")
        self.land = land
        self.populations = list(populations)
        self.events = tuple(events)
        self.dt = float(dt)
        self.attraction_probability = float(attraction_probability)
        self.attraction_range = float(attraction_range)
        self.rng = np.random.default_rng(seed)
        self.chat = ChatChannel()
        self.stats = WorldStats()
        # The clock may start mid-day so short measurement windows see
        # the diurnal profile in a realistic phase; events stay pinned
        # to absolute world time.
        self.now = float(start_time)
        self._avatars: dict[str, Avatar] = {}
        self._online: dict[str, Avatar] = {}
        self._observers: dict[str, _Observer] = {}
        self._pending: list[tuple[PlannedVisit, Population, bool]] = []
        self._pending_cursor = 0
        self._scheduled_until = float(start_time)
        self._serials: dict[str, int] = {}

    # -- scheduling -----------------------------------------------------

    def prepare(self, horizon: float) -> None:
        """Schedule all arrivals within ``[0, horizon)`` up front.

        Called implicitly by :meth:`run_until`; calling it directly is
        useful when the visit schedule itself is under test.  Extending
        an existing schedule re-plans only the uncovered suffix.
        """
        if horizon <= self._scheduled_until:
            return
        start = self._scheduled_until
        arrivals: list[tuple[PlannedVisit, Population, bool]] = []
        for population in self.populations:
            for visit in self._schedule_population(population, start, horizon):
                during_event = any(e.active_at(visit.arrival_time) for e in self.events)
                arrivals.append((visit, population, during_event))
        self._pending.extend(arrivals)
        # Keep pending arrivals globally time-ordered past the cursor.
        tail = sorted(self._pending[self._pending_cursor:], key=lambda a: a[0].arrival_time)
        self._pending[self._pending_cursor:] = tail
        self._scheduled_until = horizon

    def _schedule_population(
        self,
        population: Population,
        start: float,
        end: float,
    ) -> list[PlannedVisit]:
        """Arrivals of users first appearing in ``[start, end)``.

        Delegates to the population's session process (which handles
        thinning, revisit chains and serial numbering) with the event
        boost as the rate multiplier.  Revisit arrivals may land beyond
        ``end``; they stay pending until the clock reaches them.
        """
        process = population.process
        visits = process.schedule(
            duration=end - start,
            rng=self.rng,
            start=start,
            boost=self._event_boost if self.events else None,
            serial_start=self._serials.get(process.user_prefix, 0),
        )
        first_visits = {visit.user_id for visit in visits}
        self._serials[process.user_prefix] = (
            self._serials.get(process.user_prefix, 0) + len(first_visits)
        )
        return visits

    def _event_boost(self, t: float) -> float:
        """Combined arrival multiplier of all events active at ``t``."""
        boost = 1.0
        for event in self.events:
            if event.active_at(t):
                boost *= event.arrival_boost
        return boost

    # -- population access -----------------------------------------------

    def online_avatars(self) -> list[Avatar]:
        """Regular avatars currently connected (observers excluded)."""
        return list(self._online.values())

    @property
    def online_count(self) -> int:
        """Number of connected regular avatars."""
        return len(self._online)

    def avatar(self, user_id: str) -> Avatar:
        """Look up any avatar ever seen; raises ``KeyError`` when unknown."""
        return self._avatars[user_id]

    # -- observers (monitor-controlled avatars) ----------------------------

    def add_observer(self, avatar: Avatar, conspicuous: bool) -> None:
        """Embody a monitor's avatar on the land.

        Observer avatars are visible to users (and can perturb them)
        but never appear in :meth:`snapshot_positions` unless asked.
        """
        if avatar.user_id in self._observers:
            raise ValueError(f"observer {avatar.user_id!r} already present")
        self._observers[avatar.user_id] = _Observer(avatar, conspicuous)

    def remove_observer(self, user_id: str) -> None:
        """Withdraw a monitor's avatar."""
        del self._observers[user_id]

    def observer_avatars(self) -> list[Avatar]:
        """The embodied monitor avatars."""
        return [obs.avatar for obs in self._observers.values()]

    # -- sampling -----------------------------------------------------------

    def snapshot_positions(self, include_observers: bool = False) -> dict[str, Position]:
        """User-id → reported position for every connected avatar."""
        positions = {
            user_id: avatar.reported_position
            for user_id, avatar in self._online.items()
        }
        if include_observers:
            for user_id, obs in self._observers.items():
                positions[user_id] = obs.avatar.reported_position
        return positions

    def snapshot_arrays(
        self, include_observers: bool = False
    ) -> tuple[list[str], np.ndarray]:
        """User ids and an ``(n, 3)`` coordinate block, in one pass.

        The columnar counterpart of :meth:`snapshot_positions` (same
        avatars, same order): streaming monitors feed these straight
        into :meth:`Snapshot.from_arrays
        <repro.trace.Snapshot.from_arrays>` and on to an
        :class:`~repro.trace.RtrcAppender`, skipping the dict-of-
        ``Position`` round trip on the per-sample hot path.
        """
        avatars = list(self._online.values())
        if include_observers:
            avatars.extend(obs.avatar for obs in self._observers.values())
        names = [avatar.user_id for avatar in avatars]
        coords = np.empty((len(avatars), 3), dtype=np.float64)
        for row, avatar in enumerate(avatars):
            pos = avatar.reported_position
            coords[row, 0] = pos.x
            coords[row, 1] = pos.y
            coords[row, 2] = pos.z
        return names, coords

    # -- clock ----------------------------------------------------------------

    def run_until(self, t: float) -> None:
        """Advance the world clock to ``t`` (scheduling as needed)."""
        if t < self.now:
            raise ValueError(f"cannot run backwards: now={self.now}, asked {t}")
        self.prepare(t)
        while self.now + self.dt <= t + 1e-9:
            self.step()

    def step(self) -> None:
        """Advance one clock tick.

        Departures run before arrivals so a user whose re-visit lands
        in the same tick as her logout is cleanly logged out first.
        """
        self.prepare(self.now + self.dt)
        self.now += self.dt
        self._process_departures()
        self._process_arrivals()
        self._tick_avatars()
        self._apply_attraction()

    def _process_arrivals(self) -> None:
        while self._pending_cursor < len(self._pending):
            visit, population, during_event = self._pending[self._pending_cursor]
            if visit.arrival_time > self.now:
                break
            self._pending_cursor += 1
            if len(self._online) >= self.land.max_concurrent:
                self.stats.rejected_at_capacity += 1
                continue
            model = population.model
            if during_event and population.event_model is not None:
                model = population.event_model
            position = self.land.clamp(model.initial_position(self.rng))
            avatar = Avatar(
                user_id=visit.user_id,
                model=model,
                position=position,
                login_time=visit.arrival_time,
                logout_time=visit.departure_time,
            )
            if population.sits_on_arrival:
                avatar.sit()
            self._avatars[visit.user_id] = avatar
            self._online[visit.user_id] = avatar
            self.stats.logins += 1

    def _process_departures(self) -> None:
        departed = [
            user_id
            for user_id, avatar in self._online.items()
            if avatar.logout_time <= self.now
        ]
        for user_id in departed:
            self._online[user_id].logout()
            del self._online[user_id]
            self.stats.logouts += 1

    def _tick_avatars(self) -> None:
        for avatar in self._online.values():
            avatar.tick(self.dt, self.rng)
            avatar.position = self.land.clamp(avatar.position)
        for obs in self._observers.values():
            obs.avatar.tick(self.dt, self.rng)
            obs.avatar.position = self.land.clamp(obs.avatar.position)

    def _apply_attraction(self) -> None:
        """Perturbation: users converge on conspicuous observers."""
        conspicuous = [
            obs.avatar for obs in self._observers.values() if obs.conspicuous
        ]
        if not conspicuous:
            return
        p = self.attraction_probability * self.dt
        if p <= 0.0:
            return
        for avatar in self._online.values():
            if avatar.state is AvatarState.SITTING:
                continue
            for magnet in conspicuous:
                if distance(avatar.position, magnet.position) > self.attraction_range:
                    continue
                if self.rng.random() < p:
                    avatar.redirect_to(magnet.position)
                    self.stats.attraction_redirects += 1
                    break
