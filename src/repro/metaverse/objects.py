"""In-world objects.

Objects matter to the reproduction for three reasons:

* scripted objects are the substance of the *sensor network*
  monitoring architecture (§2) and inherit its platform limits;
* sit-objects trigger the ``{0,0,0}`` position artefact the trace
  validator must flag;
* deployment rules (private lands refuse objects; public lands expire
  them) are exactly why the authors abandoned the sensor approach.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.geometry import Position
from repro.metaverse.land import AccessPolicy, Land


class DeploymentError(RuntimeError):
    """Raised when an object cannot be placed on a land."""


_object_ids = itertools.count(1)


@dataclass
class WorldObject:
    """Base class for anything rezzed on a land."""

    position: Position
    owner: str = "unknown"
    created_at: float = 0.0
    object_id: int = field(default_factory=lambda: next(_object_ids))

    def expires_at(self, land: Land) -> float | None:
        """Absolute expiry time on this land, or ``None`` if permanent."""
        if land.policy.objects_expire:
            return self.created_at + land.object_lifetime
        return None

    def expired(self, land: Land, now: float) -> bool:
        """True once the land's object-lifetime policy reaped the object."""
        expiry = self.expires_at(land)
        return expiry is not None and now >= expiry


@dataclass
class ScriptedObject(WorldObject):
    """An object running an LSL-like script (the sensor building block).

    The script platform enforces a local memory budget; 16 KB is the
    figure the paper quotes for sensor storage.
    """

    memory_limit_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.memory_limit_bytes <= 0:
            raise ValueError(
                f"memory limit must be positive, got {self.memory_limit_bytes}"
            )


@dataclass
class SitObject(WorldObject):
    """A bench/chair/poseball an avatar can sit on.

    A seated avatar's reported position becomes exactly ``{0,0,0}`` —
    the SL quirk the paper documents in §3.  ``capacity`` limits
    simultaneous sitters.
    """

    capacity: int = 1

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")


@dataclass
class MoneySpot(WorldObject):
    """A camping/money object that pays users for staying put.

    The paper warns that high-population lands are often money lands
    where users "sit and wait... to earn money (for free)"; presets use
    a money spot plus :class:`~repro.mobility.static.StaticModel`
    campers to model that population.
    """

    payout_interval: float = 600.0

    def __post_init__(self) -> None:
        if self.payout_interval <= 0:
            raise ValueError(
                f"payout interval must be positive, got {self.payout_interval}"
            )


def deploy(land: Land, obj: WorldObject, authorized: bool = False) -> WorldObject:
    """Place an object on a land, enforcing the access policy.

    Raises
    ------
    DeploymentError
        On a private land without ``authorized``, or when the position
        is off the land.
    """
    if land.policy is AccessPolicy.PRIVATE and not authorized:
        raise DeploymentError(
            f"land {land.name!r} is private: object deployment requires "
            "prior authorization from the land owner"
        )
    if not land.contains(obj.position):
        raise DeploymentError(
            f"object position {obj.position} lies outside land {land.name!r}"
        )
    return obj
