"""A generative Second Life substrate.

The real study crawled the live SL metaverse; this package replaces it
with a discrete-time virtual world that exposes the same observable
surface to the monitors:

* :class:`~repro.metaverse.land.Land` — a 256 x 256 m region with an
  access policy, points of interest, deployable objects and sit-spots;
* :class:`~repro.metaverse.avatar.Avatar` — a user with a mobility
  model, advanced by the world clock;
* :class:`~repro.metaverse.sessions.SessionProcess` — diurnal Poisson
  arrivals and heavy-tailed session durations (capped at the ~4 h
  maximum the paper observed);
* :class:`~repro.metaverse.events.ScheduledEvent` — time-boxed
  attractions (the St. Valentine's event on Isle of View);
* :class:`~repro.metaverse.world.World` — the engine tying it all
  together at 1-second resolution.
"""

from repro.metaverse.land import AccessPolicy, Land
from repro.metaverse.objects import (
    DeploymentError,
    MoneySpot,
    ScriptedObject,
    SitObject,
    WorldObject,
)
from repro.metaverse.avatar import Avatar, AvatarState
from repro.metaverse.sessions import PlannedVisit, SessionProcess
from repro.metaverse.events import ScheduledEvent
from repro.metaverse.chat import ChatChannel, ChatMessage
from repro.metaverse.hotspots import HotspotField
from repro.metaverse.world import Population, World, WorldStats

__all__ = [
    "HotspotField",
    "AccessPolicy",
    "Land",
    "DeploymentError",
    "MoneySpot",
    "ScriptedObject",
    "SitObject",
    "WorldObject",
    "Avatar",
    "AvatarState",
    "PlannedVisit",
    "SessionProcess",
    "ScheduledEvent",
    "ChatChannel",
    "ChatMessage",
    "Population",
    "World",
    "WorldStats",
]
