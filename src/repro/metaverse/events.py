"""Scheduled events: time-boxed attractions on a land.

Isle of View in the paper is "a land in which an event (St. Valentines)
was organized" — the event explains both its high concurrency (65
users on average) and the fact that *every* user had at least one
neighbour at Bluetooth range: the event venue concentrates arrivals.

An event contributes three effects while active:

* an **arrival boost** (multiplies the session process rate);
* a **venue POI** that is added to the land's attraction set;
* a **session stretch** (visitors stay longer during the event).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.poi import PointOfInterest


@dataclass(frozen=True)
class ScheduledEvent:
    """A time-boxed attraction.

    ``venue`` may be an existing POI or a dedicated one (stage,
    ballroom); when the event is inactive the venue keeps operating
    with its configured base weight, which is typically small.
    """

    name: str
    start: float
    end: float
    venue: PointOfInterest
    arrival_boost: float = 2.0
    weight_boost: float = 5.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"event {self.name!r} must end after it starts")
        if self.arrival_boost <= 0:
            raise ValueError(f"arrival boost must be positive, got {self.arrival_boost}")
        if self.weight_boost <= 0:
            raise ValueError(f"weight boost must be positive, got {self.weight_boost}")

    def active_at(self, t: float) -> bool:
        """True while the event is running."""
        return self.start <= t < self.end

    def boosted_venue(self) -> PointOfInterest:
        """The venue POI with its during-event attraction weight."""
        return PointOfInterest(
            name=self.venue.name,
            x=self.venue.x,
            y=self.venue.y,
            radius=self.venue.radius,
            weight=self.venue.weight * self.weight_boost,
            spawn_weight=max(self.venue.spawn_weight, self.venue.weight),
        )

    @property
    def duration(self) -> float:
        """Event length in seconds."""
        return self.end - self.start
