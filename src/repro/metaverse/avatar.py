"""Avatars: users embodied on a land.

An avatar is a small state machine — WALKING along the current leg,
PAUSED between legs, SITTING on an object, or OFFLINE — advanced by
the world clock.  All movement decisions are delegated to the avatar's
mobility model; the avatar only executes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Path, Position
from repro.mobility import Leg, MobilityModel

#: Floor applied to degenerate (zero-length, zero-pause) legs so a
#: misbehaving mobility model cannot stall the simulation clock.
_MIN_EFFECTIVE_PAUSE = 0.25

#: Sentinel marking per-avatar mobility state that has not been seeded
#: yet (``None`` is a valid state for stateless models).
_STATE_UNSET = object()


class AvatarState(enum.Enum):
    """Lifecycle states of an embodied avatar."""

    WALKING = "walking"
    PAUSED = "paused"
    SITTING = "sitting"
    OFFLINE = "offline"


@dataclass
class Avatar:
    """One user connected to a land.

    The world engine calls :meth:`tick` once per simulation step; the
    avatar walks its current leg at the leg's speed, pauses on arrival,
    and asks the mobility model for a new leg when the pause runs out.
    """

    user_id: str
    model: MobilityModel
    position: Position
    state: AvatarState = AvatarState.PAUSED
    login_time: float = 0.0
    logout_time: float = float("inf")
    distance_walked: float = field(default=0.0, repr=False)
    seconds_moving: float = field(default=0.0, repr=False)
    _leg: Leg | None = field(default=None, repr=False)
    _pause_left: float = field(default=0.0, repr=False)
    _model_state: object = field(default=_STATE_UNSET, repr=False)

    @property
    def online(self) -> bool:
        """True while the avatar is present on the land."""
        return self.state is not AvatarState.OFFLINE

    @property
    def reported_position(self) -> Position:
        """What a monitor reads for this avatar.

        Sitting avatars report the origin — the SL artefact the paper
        documents ("when a user sits on an object her coordinates are
        {x=0, y=0, z=0}").
        """
        if self.state is AvatarState.SITTING:
            return Position(0.0, 0.0, 0.0)
        return self.position

    # -- state transitions ------------------------------------------------

    def sit(self) -> None:
        """Sit on an object at the current location."""
        if not self.online:
            raise RuntimeError(f"avatar {self.user_id} is offline")
        self.state = AvatarState.SITTING
        self._leg = None
        self._pause_left = 0.0

    def stand(self) -> None:
        """Stand up; the next tick resumes normal mobility."""
        if self.state is AvatarState.SITTING:
            self.state = AvatarState.PAUSED

    def logout(self) -> None:
        """Disconnect from the land."""
        self.state = AvatarState.OFFLINE
        self._leg = None

    def redirect_to(self, target: Position, speed: float = 3.0) -> None:
        """Override the current leg and walk straight to ``target``.

        Used by the crawler-perturbation mechanism: curious users drop
        what they were doing and walk toward the new arrival.  Sitting
        and offline avatars ignore the call.
        """
        if not self.online or self.state is AvatarState.SITTING:
            return
        self._leg = Leg(Path.from_points([self.position, target]), speed=speed, pause=0.0)
        self._pause_left = 0.0
        self.state = AvatarState.WALKING

    # -- clock ---------------------------------------------------------------

    def tick(self, dt: float, rng: np.random.Generator) -> None:
        """Advance the avatar by ``dt`` seconds.

        A single tick may span several leg boundaries (finish walking,
        pause briefly, start the next leg); the loop consumes the whole
        ``dt`` so avatar kinematics are independent of tick size.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if self.state in (AvatarState.OFFLINE, AvatarState.SITTING):
            return

        remaining = dt
        while remaining > 1e-12:
            if self.state is AvatarState.PAUSED:
                if self._pause_left > remaining:
                    self._pause_left -= remaining
                    return
                remaining -= self._pause_left
                self._pause_left = 0.0
                if self._model_state is _STATE_UNSET:
                    self._model_state = self.model.initial_state(self.position, rng)
                leg, self._model_state = self.model.next_leg_from(
                    self.position, self._model_state, rng
                )
                self._begin(leg)
            else:  # WALKING
                leg = self._leg
                assert leg is not None, "walking avatar must have a leg"
                distance_left = leg.path.remaining
                seconds_to_arrival = distance_left / leg.speed
                if seconds_to_arrival > remaining:
                    step = leg.speed * remaining
                    self.position = leg.path.advance(step)
                    self.distance_walked += step
                    self.seconds_moving += remaining
                    return
                self.position = leg.path.advance(distance_left)
                self.distance_walked += distance_left
                self.seconds_moving += seconds_to_arrival
                remaining -= seconds_to_arrival
                self.state = AvatarState.PAUSED
                self._pause_left = leg.pause
                self._leg = None

    def _begin(self, leg: Leg) -> None:
        """Install a new leg, degrading degenerate ones to a short pause."""
        if leg.path.length > 1e-9 and leg.speed > 0:
            self._leg = leg
            self.state = AvatarState.WALKING
        else:
            self._leg = None
            self.state = AvatarState.PAUSED
            self._pause_left = max(leg.pause, _MIN_EFFECTIVE_PAUSE)
