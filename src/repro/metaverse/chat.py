"""Local chat: range-limited text broadcast.

Chat matters to the reproduction because of the crawler's cover
story: a silent, motionless avatar attracts curious users (perturbing
the measured mobility), so the authors made their crawler "randomly
move over the target land and broadcast chat messages chosen from a
small set of pre-defined phrases".  The chat channel carries those
messages; the world engine uses recent chat as the signal that an
avatar behaves like a human.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.geometry import Position, distance

#: Second Life local-chat audibility radius, meters.
CHAT_RANGE = 20.0

#: The canned phrases a mimicking crawler cycles through.
DEFAULT_PHRASES = (
    "hello everyone :)",
    "nice place!",
    "anyone been here long?",
    "love the music",
    "brb",
    "hi! just looking around",
)


@dataclass(frozen=True)
class ChatMessage:
    """One utterance on the local channel."""

    time: float
    speaker: str
    text: str
    position: Position

    def audible_from(self, listener: Position, chat_range: float = CHAT_RANGE) -> bool:
        """True when a listener at ``listener`` hears the message."""
        return distance(self.position, listener) <= chat_range


@dataclass
class ChatChannel:
    """The land-wide log of local chat.

    The log is bounded: old messages beyond ``horizon`` seconds are
    dropped on insertion, because consumers only ever ask about recent
    activity.
    """

    horizon: float = 600.0
    _messages: list[ChatMessage] = field(default_factory=list)

    def post(self, message: ChatMessage) -> None:
        """Append a message and prune entries older than the horizon."""
        self._messages.append(message)
        cutoff = message.time - self.horizon
        if self._messages and self._messages[0].time < cutoff:
            self._messages = [m for m in self._messages if m.time >= cutoff]

    def recent(self, now: float, window: float) -> list[ChatMessage]:
        """Messages posted within the last ``window`` seconds."""
        cutoff = now - window
        return [m for m in self._messages if m.time >= cutoff]

    def spoken_recently(self, speaker: str, now: float, window: float = 120.0) -> bool:
        """Has ``speaker`` said anything within ``window`` seconds?"""
        return any(
            m.speaker == speaker for m in self.recent(now, window)
        )

    def heard_by(
        self,
        listener: Position,
        now: float,
        window: float = 120.0,
        chat_range: float = CHAT_RANGE,
    ) -> Iterator[ChatMessage]:
        """Messages a listener at ``listener`` would have heard recently."""
        for message in self.recent(now, window):
            if message.audible_from(listener, chat_range):
                yield message

    def __len__(self) -> int:
        return len(self._messages)
