"""Zipf-popular hotspot fields for metaverse-scale synthesis.

Vasan et al. ("Human mobility in the metaverse") observe that avatar
density across a large virtual world is extremely skewed: a handful of
venues hold most of the population while a long tail of parcels sits
nearly empty.  A :class:`HotspotField` captures exactly that — ``k``
venue centres with Zipf-distributed popularity over a large square
world — and is the spatial skeleton behind
:func:`repro.trace.synth.metaverse_trace`, the million-avatar-scale
load generator.

Everything is a pure function of the generator passed in: the same
seed reproduces the same field and the same avatar assignment,
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HotspotField:
    """``k`` venues on a square world, with Zipf popularity.

    Parameters
    ----------
    centers:
        ``(k, 2)`` venue coordinates, meters.
    weights:
        ``(k,)`` venue popularity, normalized to sum to 1.
    scatter:
        Gaussian spread of avatars around their venue, meters.
    size:
        World side length, meters.
    """

    centers: np.ndarray
    weights: np.ndarray
    scatter: float
    size: float

    def __post_init__(self) -> None:
        if self.centers.ndim != 2 or self.centers.shape[1] != 2:
            raise ValueError(
                f"centers must be (k, 2), got shape {self.centers.shape}"
            )
        if self.weights.shape != (len(self.centers),):
            raise ValueError("one weight per center required")
        if self.scatter <= 0 or self.size <= 0:
            raise ValueError("scatter and size must be positive")

    @classmethod
    def generate(
        cls,
        n_hotspots: int,
        size: float,
        rng: np.random.Generator,
        zipf_exponent: float = 1.2,
        scatter: float = 24.0,
    ) -> "HotspotField":
        """Uniform venue placement with rank-``r^(-s)`` popularity.

        ``zipf_exponent`` around 1 matches the heavy venue skew of
        measured virtual worlds; larger values concentrate harder.
        """
        if n_hotspots < 1:
            raise ValueError(f"need at least one hotspot, got {n_hotspots}")
        if zipf_exponent <= 0:
            raise ValueError(f"exponent must be positive, got {zipf_exponent}")
        centers = rng.uniform(0.0, size, (n_hotspots, 2))
        ranks = np.arange(1, n_hotspots + 1, dtype=np.float64)
        weights = ranks**-zipf_exponent
        weights /= weights.sum()
        return cls(centers=centers, weights=weights, scatter=scatter, size=size)

    def assign(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a venue index per avatar from the popularity law."""
        return rng.choice(len(self.centers), size=n, p=self.weights)

    def materialize(self, assignment: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """``(n, 2)`` positions scattered around each avatar's venue."""
        positions = self.centers[assignment] + rng.normal(
            0.0, self.scatter, (len(assignment), 2)
        )
        return np.clip(positions, 0.0, self.size)
