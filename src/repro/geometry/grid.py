"""Uniform spatial grid over a land.

Two consumers share this structure:

* the simulator, for O(1) neighbourhood queries when building
  line-of-sight adjacency (bucket the avatars, compare only adjacent
  buckets);
* the analysis code, for the paper's *zone occupation* metric, which
  divides a land into ``L x L`` square sub-cells (``L = 20`` m in the
  paper) and counts users per cell.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np


class CellIndex(NamedTuple):
    """Integer coordinates of a grid cell (column, row)."""

    col: int
    row: int


def cell_of(x: float, y: float, cell_size: float) -> CellIndex:
    """Map a planar point to its containing cell.

    Points on a cell's right/top edge belong to the next cell, matching
    ``floor`` semantics; callers clamp to the land bounds beforehand if
    they need edge points folded into the last cell.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    return CellIndex(int(np.floor(x / cell_size)), int(np.floor(y / cell_size)))


def iter_cells(width: float, height: float, cell_size: float) -> Iterator[CellIndex]:
    """Yield every cell of a ``width x height`` area in row-major order.

    Partial cells on the far edges are included, mirroring the paper's
    division of a 256 m land into 20 m zones (the last zone is 16 m).
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    cols = int(np.ceil(width / cell_size))
    rows = int(np.ceil(height / cell_size))
    for row in range(rows):
        for col in range(cols):
            yield CellIndex(col, row)


class SpatialGrid:
    """Bucket points into uniform cells and answer range queries.

    The grid does not own the points: callers insert ``(key, x, y)``
    tuples and get keys back from queries.  Range queries compare only
    the buckets that can intersect the query disc, so building
    line-of-sight networks costs O(n * k) with k the local density
    instead of O(n^2).
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._cells: dict[CellIndex, list[tuple[object, float, float]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, key: object, x: float, y: float) -> None:
        """Add a keyed point to the grid."""
        self._cells[cell_of(x, y, self.cell_size)].append((key, x, y))
        self._count += 1

    def insert_many(self, items: Iterable[tuple[object, float, float]]) -> None:
        """Add several keyed points at once."""
        for key, x, y in items:
            self.insert(key, x, y)

    def clear(self) -> None:
        """Drop all points (cell structure is reused)."""
        self._cells.clear()
        self._count = 0

    def occupancy(self) -> dict[CellIndex, int]:
        """Points per non-empty cell — the core of zone occupation."""
        return {cell: len(points) for cell, points in self._cells.items() if points}

    def within(self, x: float, y: float, radius: float) -> list[object]:
        """Keys of all points within ``radius`` of ``(x, y)``.

        A point exactly at distance ``radius`` is *excluded*: the paper
        defines a link between users whose distance is *less than* r.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(np.ceil(radius / self.cell_size))
        center = cell_of(x, y, self.cell_size)
        radius_sq = radius * radius
        found: list[object] = []
        for dcol in range(-reach, reach + 1):
            for drow in range(-reach, reach + 1):
                cell = CellIndex(center.col + dcol, center.row + drow)
                for key, px, py in self._cells.get(cell, ()):
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy < radius_sq:
                        found.append(key)
        return found

    def neighbour_pairs(self, radius: float) -> list[tuple[object, object]]:
        """All unordered pairs of points closer than ``radius``.

        Pairs are produced once each; a pair of coincident points is
        still a single pair.  Self-pairs never appear.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(np.ceil(radius / self.cell_size))
        radius_sq = radius * radius
        pairs: list[tuple[object, object]] = []
        cells = self._cells
        # Scan each cell against itself and against the forward half of
        # its neighbourhood so every cell pair is visited exactly once.
        forward_offsets = [
            (dcol, drow)
            for dcol in range(-reach, reach + 1)
            for drow in range(0, reach + 1)
            if drow > 0 or dcol > 0
        ]
        for cell, points in cells.items():
            for i, (key_a, ax, ay) in enumerate(points):
                for key_b, bx, by in points[i + 1:]:
                    dx = ax - bx
                    dy = ay - by
                    if dx * dx + dy * dy < radius_sq:
                        pairs.append((key_a, key_b))
            for dcol, drow in forward_offsets:
                other = CellIndex(cell.col + dcol, cell.row + drow)
                other_points = cells.get(other)
                if not other_points:
                    continue
                for key_a, ax, ay in points:
                    for key_b, bx, by in other_points:
                        dx = ax - bx
                        dy = ay - by
                        if dx * dx + dy * dy < radius_sq:
                            pairs.append((key_a, key_b))
        return pairs


def _cell_group_pairs(
    starts_a: np.ndarray,
    counts_a: np.ndarray,
    starts_b: np.ndarray,
    counts_b: np.ndarray,
    same_group: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate index pairs between matched groups of sorted points.

    Group ``g`` on the A side holds the contiguous index range
    ``starts_a[g] : starts_a[g] + counts_a[g]`` (likewise B); the result
    is the cross product of every matched group pair, fully vectorized.
    With ``same_group`` (A is B) only the strict upper triangle is kept.
    """
    sizes = counts_a * counts_b
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.repeat(np.cumsum(sizes) - sizes, sizes)
    local = np.arange(total, dtype=np.int64) - offsets
    kb = np.repeat(counts_b, sizes)
    left = np.repeat(starts_a, sizes) + local // kb
    right = np.repeat(starts_b, sizes) + local % kb
    if same_group:
        keep = left < right
        left, right = left[keep], right[keep]
    return left, right


def planar_neighbour_pairs(
    xy: np.ndarray,
    radius: float,
    cell_size: float | None = None,
) -> np.ndarray:
    """All index pairs ``(i, j)``, ``i < j``, with planar distance < ``radius``.

    Vectorized cell-list search: points are bucketed into a uniform
    grid of ``cell_size`` (default: ``radius``), sorted by cell, and
    only same-cell plus forward-neighbour-cell blocks are compared —
    O(n + candidate pairs) instead of the O(n²) dense matrix.  Returns
    an ``(m, 2)`` int64 array sorted lexicographically; the strict
    ``<`` threshold matches the paper's link definition.
    """
    pairs, _ = planar_neighbour_pairs_with_distances(xy, radius, cell_size)
    return pairs


def planar_neighbour_pairs_with_distances(
    xy: np.ndarray,
    radius: float,
    cell_size: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`planar_neighbour_pairs` plus the distance of every pair.

    Returns ``(pairs, distances)`` with ``distances[k]`` the planar
    distance of ``pairs[k]``.  Multi-range consumers build the cell
    list once at the largest radius and select smaller radii by
    masking the distances — one grid build amortized over a whole
    radio-range sweep.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    xy = np.asarray(xy, dtype=np.float64).reshape(-1, 2)
    n = len(xy)
    if n < 2:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.float64)
    cell = float(cell_size) if cell_size is not None else float(radius)
    if cell < radius:
        raise ValueError(
            f"cell_size ({cell}) must be >= radius ({radius}): the search "
            "only visits adjacent cells"
        )
    col = np.floor(xy[:, 0] / cell).astype(np.int64)
    row = np.floor(xy[:, 1] / cell).astype(np.int64)
    col -= col.min()
    row -= row.min()
    # Stride with one column of headroom so a +1 column offset never
    # wraps onto an occupied cell of the next row.
    stride = int(col.max()) + 2
    keys = row * stride + col
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_xy = xy[order]
    unique_keys, starts = np.unique(sorted_keys, return_index=True)
    counts = np.diff(np.append(starts, n)).astype(np.int64)
    starts = starts.astype(np.int64)

    left_parts: list[np.ndarray] = []
    right_parts: list[np.ndarray] = []
    same_left, same_right = _cell_group_pairs(starts, counts, starts, counts, True)
    left_parts.append(same_left)
    right_parts.append(same_right)
    # Forward half of the 8-neighbourhood: E, NW, N, NE.
    for offset in (1, stride - 1, stride, stride + 1):
        targets = unique_keys + offset
        pos = np.searchsorted(unique_keys, targets)
        pos_clipped = np.minimum(pos, len(unique_keys) - 1)
        matched = unique_keys[pos_clipped] == targets
        if not matched.any():
            continue
        left, right = _cell_group_pairs(
            starts[matched],
            counts[matched],
            starts[pos_clipped[matched]],
            counts[pos_clipped[matched]],
            False,
        )
        left_parts.append(left)
        right_parts.append(right)

    cand_left = np.concatenate(left_parts)
    cand_right = np.concatenate(right_parts)
    if not len(cand_left):
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.float64)
    dx = sorted_xy[cand_left, 0] - sorted_xy[cand_right, 0]
    dy = sorted_xy[cand_left, 1] - sorted_xy[cand_right, 1]
    dist = np.hypot(dx, dy)
    close = dist < radius
    first = order[cand_left[close]]
    second = order[cand_right[close]]
    pairs = np.stack(
        (np.minimum(first, second), np.maximum(first, second)), axis=1
    )
    ordering = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[ordering], dist[close][ordering]


def grid_shape(width: float, height: float, cell_size: float) -> tuple[int, int]:
    """``(cols, rows)`` of the cell grid covering a ``width x height`` area."""
    return int(np.ceil(width / cell_size)), int(np.ceil(height / cell_size))


def flat_cell_indices(
    xy: np.ndarray,
    width: float,
    height: float,
    cell_size: float,
    clamp: bool = True,
) -> np.ndarray:
    """Row-major flat cell index per point, vectorized.

    This is the single home of the boundary convention: points are
    clamped onto the land when ``clamp`` is true (SL coordinates
    occasionally overshoot the edge during teleports), otherwise
    out-of-area points raise ``ValueError``.  Both
    :func:`occupancy_counts` and the analysis layer's zone-occupation
    metric index through here, so they can never diverge.
    """
    pts = np.asarray(xy, dtype=float).reshape(-1, 2) if len(xy) else np.empty((0, 2))
    px, py = pts[:, 0], pts[:, 1]
    if clamp:
        px = np.clip(px, 0.0, np.nextafter(width, 0.0))
        py = np.clip(py, 0.0, np.nextafter(height, 0.0))
    else:
        outside = (px < 0.0) | (px >= width) | (py < 0.0) | (py >= height)
        if outside.any():
            bad = int(np.flatnonzero(outside)[0])
            raise ValueError(
                f"point ({px[bad]}, {py[bad]}) outside {width}x{height} area"
            )
    cols, _ = grid_shape(width, height, cell_size)
    col = np.floor(px / cell_size).astype(np.int64)
    row = np.floor(py / cell_size).astype(np.int64)
    return row * cols + col


def occupancy_counts(
    xy: Sequence[tuple[float, float]] | np.ndarray,
    width: float,
    height: float,
    cell_size: float,
    clamp: bool = True,
) -> np.ndarray:
    """Users per cell over the *whole* grid, including empty cells.

    The paper's Fig. 3 plots the CDF of users per 20 m cell with empty
    cells included (that is why the curve starts around 0.8: most of a
    land is empty).  Returns a flat array with one entry per cell of the
    ``width x height`` area.
    """
    cols, rows = grid_shape(width, height, cell_size)
    keys = flat_cell_indices(xy, width, height, cell_size, clamp)
    return np.bincount(keys, minlength=cols * rows)
