"""Uniform spatial grid over a land.

Two consumers share this structure:

* the simulator, for O(1) neighbourhood queries when building
  line-of-sight adjacency (bucket the avatars, compare only adjacent
  buckets);
* the analysis code, for the paper's *zone occupation* metric, which
  divides a land into ``L x L`` square sub-cells (``L = 20`` m in the
  paper) and counts users per cell.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np


class CellIndex(NamedTuple):
    """Integer coordinates of a grid cell (column, row)."""

    col: int
    row: int


def cell_of(x: float, y: float, cell_size: float) -> CellIndex:
    """Map a planar point to its containing cell.

    Points on a cell's right/top edge belong to the next cell, matching
    ``floor`` semantics; callers clamp to the land bounds beforehand if
    they need edge points folded into the last cell.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    return CellIndex(int(np.floor(x / cell_size)), int(np.floor(y / cell_size)))


def iter_cells(width: float, height: float, cell_size: float) -> Iterator[CellIndex]:
    """Yield every cell of a ``width x height`` area in row-major order.

    Partial cells on the far edges are included, mirroring the paper's
    division of a 256 m land into 20 m zones (the last zone is 16 m).
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    cols = int(np.ceil(width / cell_size))
    rows = int(np.ceil(height / cell_size))
    for row in range(rows):
        for col in range(cols):
            yield CellIndex(col, row)


class SpatialGrid:
    """Bucket points into uniform cells and answer range queries.

    The grid does not own the points: callers insert ``(key, x, y)``
    tuples and get keys back from queries.  Range queries compare only
    the buckets that can intersect the query disc, so building
    line-of-sight networks costs O(n * k) with k the local density
    instead of O(n^2).
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._cells: dict[CellIndex, list[tuple[object, float, float]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, key: object, x: float, y: float) -> None:
        """Add a keyed point to the grid."""
        self._cells[cell_of(x, y, self.cell_size)].append((key, x, y))
        self._count += 1

    def insert_many(self, items: Iterable[tuple[object, float, float]]) -> None:
        """Add several keyed points at once."""
        for key, x, y in items:
            self.insert(key, x, y)

    def clear(self) -> None:
        """Drop all points (cell structure is reused)."""
        self._cells.clear()
        self._count = 0

    def occupancy(self) -> dict[CellIndex, int]:
        """Points per non-empty cell — the core of zone occupation."""
        return {cell: len(points) for cell, points in self._cells.items() if points}

    def within(self, x: float, y: float, radius: float) -> list[object]:
        """Keys of all points within ``radius`` of ``(x, y)``.

        A point exactly at distance ``radius`` is *excluded*: the paper
        defines a link between users whose distance is *less than* r.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(np.ceil(radius / self.cell_size))
        center = cell_of(x, y, self.cell_size)
        radius_sq = radius * radius
        found: list[object] = []
        for dcol in range(-reach, reach + 1):
            for drow in range(-reach, reach + 1):
                cell = CellIndex(center.col + dcol, center.row + drow)
                for key, px, py in self._cells.get(cell, ()):
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy < radius_sq:
                        found.append(key)
        return found

    def neighbour_pairs(self, radius: float) -> list[tuple[object, object]]:
        """All unordered pairs of points closer than ``radius``.

        Pairs are produced once each; a pair of coincident points is
        still a single pair.  Self-pairs never appear.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        reach = int(np.ceil(radius / self.cell_size))
        radius_sq = radius * radius
        pairs: list[tuple[object, object]] = []
        cells = self._cells
        # Scan each cell against itself and against the forward half of
        # its neighbourhood so every cell pair is visited exactly once.
        forward_offsets = [
            (dcol, drow)
            for dcol in range(-reach, reach + 1)
            for drow in range(0, reach + 1)
            if drow > 0 or dcol > 0
        ]
        for cell, points in cells.items():
            for i, (key_a, ax, ay) in enumerate(points):
                for key_b, bx, by in points[i + 1:]:
                    dx = ax - bx
                    dy = ay - by
                    if dx * dx + dy * dy < radius_sq:
                        pairs.append((key_a, key_b))
            for dcol, drow in forward_offsets:
                other = CellIndex(cell.col + dcol, cell.row + drow)
                other_points = cells.get(other)
                if not other_points:
                    continue
                for key_a, ax, ay in points:
                    for key_b, bx, by in other_points:
                        dx = ax - bx
                        dy = ay - by
                        if dx * dx + dy * dy < radius_sq:
                            pairs.append((key_a, key_b))
        return pairs


def occupancy_counts(
    xy: Sequence[tuple[float, float]] | np.ndarray,
    width: float,
    height: float,
    cell_size: float,
    clamp: bool = True,
) -> np.ndarray:
    """Users per cell over the *whole* grid, including empty cells.

    The paper's Fig. 3 plots the CDF of users per 20 m cell with empty
    cells included (that is why the curve starts around 0.8: most of a
    land is empty).  Returns a flat array with one entry per cell of the
    ``width x height`` area.

    Points outside the area are clamped onto the boundary when
    ``clamp`` is true (SL coordinates occasionally overshoot the land
    edge during teleports); otherwise they raise ``ValueError``.
    """
    cols = int(np.ceil(width / cell_size))
    rows = int(np.ceil(height / cell_size))
    counts = np.zeros(cols * rows, dtype=np.int64)
    pts = np.asarray(xy, dtype=float).reshape(-1, 2) if len(xy) else np.empty((0, 2))
    for px, py in pts:
        if clamp:
            px = min(max(px, 0.0), np.nextafter(width, 0.0))
            py = min(max(py, 0.0), np.nextafter(height, 0.0))
        elif not (0.0 <= px < width and 0.0 <= py < height):
            raise ValueError(f"point ({px}, {py}) outside {width}x{height} area")
        cell = cell_of(px, py, cell_size)
        counts[cell.row * cols + cell.col] += 1
    return counts
