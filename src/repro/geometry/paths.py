"""Polyline paths walked by avatars.

A mobility model produces a :class:`Path` — an ordered list of
waypoints — and the world engine advances an avatar along it at the
avatar's speed.  Paths support constant-speed interpolation so the
1-second simulation clock yields positions anywhere along a segment,
not only at waypoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.geometry.vectors import Position, distance


@dataclass(frozen=True)
class Segment:
    """One straight leg of a path."""

    start: Position
    end: Position

    @property
    def length(self) -> float:
        """Planar length of the leg in meters."""
        return distance(self.start, self.end)

    def point_at(self, fraction: float) -> Position:
        """Position after covering ``fraction`` of the leg (0..1).

        Values outside [0, 1] extrapolate linearly; callers that walk a
        path never pass them, but tests exercise the behaviour.
        """
        return Position(
            self.start.x + (self.end.x - self.start.x) * fraction,
            self.start.y + (self.end.y - self.start.y) * fraction,
            self.start.z + (self.end.z - self.start.z) * fraction,
        )


@dataclass
class Path:
    """A polyline with constant-speed traversal state.

    The path tracks how far along it has been walked; ``advance``
    moves the cursor and returns the new position, which makes the
    world-engine update loop a single call per avatar per tick.
    """

    waypoints: list[Position] = field(default_factory=list)
    _walked: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if len(self.waypoints) < 1:
            raise ValueError("a path needs at least one waypoint")

    @classmethod
    def from_points(cls, points: Sequence[Position | Sequence[float]]) -> "Path":
        """Build a path, coercing raw tuples into :class:`Position`."""
        coerced = [
            p if isinstance(p, Position) else Position(p[0], p[1], p[2] if len(p) > 2 else 0.0)
            for p in points
        ]
        return cls(waypoints=coerced)

    def segments(self) -> Iterator[Segment]:
        """Yield the straight legs between consecutive waypoints."""
        for start, end in zip(self.waypoints, self.waypoints[1:]):
            yield Segment(start, end)

    @property
    def length(self) -> float:
        """Total planar length of the polyline."""
        return sum(segment.length for segment in self.segments())

    @property
    def walked(self) -> float:
        """Distance already covered along the path."""
        return self._walked

    @property
    def remaining(self) -> float:
        """Distance left to the final waypoint."""
        return max(0.0, self.length - self._walked)

    @property
    def finished(self) -> bool:
        """True once the cursor has reached the final waypoint."""
        return self._walked >= self.length

    def position_at(self, travelled: float) -> Position:
        """Position after covering ``travelled`` meters from the start.

        Clamps to the endpoints, so negative input returns the first
        waypoint and overshoot returns the last.
        """
        if travelled <= 0.0 or len(self.waypoints) == 1:
            return self.waypoints[0]
        covered = 0.0
        for segment in self.segments():
            seg_len = segment.length
            if seg_len > 0.0 and covered + seg_len >= travelled:
                return segment.point_at((travelled - covered) / seg_len)
            covered += seg_len
        return self.waypoints[-1]

    def advance(self, step: float) -> Position:
        """Move the cursor ``step`` meters forward and return the position.

        ``step`` is typically ``speed * dt``.  Negative steps are
        rejected — avatars do not walk paths backwards.
        """
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        self._walked = min(self._walked + step, self.length)
        return self.position_at(self._walked)

    def current_position(self) -> Position:
        """Position at the cursor without advancing."""
        return self.position_at(self._walked)
