"""Positions and distance kernels.

Second Life expresses avatar location as coordinates ``{x, y, z}``
relative to the current land, whose default footprint is 256 x 256
meters.  Mobility in the paper is effectively planar: avatars walk on
the terrain, so every metric (contacts, travel length, zone occupation)
is computed from the ``(x, y)`` projection while ``z`` is carried along
for completeness and for the sit-detection quirk (a sitting avatar
reports ``{0, 0, 0}``).
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Sequence

import numpy as np


class Position(NamedTuple):
    """A point in land-relative coordinates, in meters."""

    x: float
    y: float
    z: float = 0.0

    def to_2d(self) -> tuple[float, float]:
        """Return the planar projection used by all mobility metrics."""
        return (self.x, self.y)

    def is_origin(self) -> bool:
        """True when the position is exactly the land origin.

        Second Life reports ``{0, 0, 0}`` for avatars seated on an
        object, so an exact origin reading is treated as a *sitting*
        artefact rather than a real location by the trace validator.
        """
        return self.x == 0.0 and self.y == 0.0 and self.z == 0.0

    def translated(self, dx: float, dy: float, dz: float = 0.0) -> "Position":
        """Return a new position displaced by the given offsets."""
        return Position(self.x + dx, self.y + dy, self.z + dz)


ORIGIN = Position(0.0, 0.0, 0.0)


def distance(a: Position | Sequence[float], b: Position | Sequence[float]) -> float:
    """Euclidean distance between the planar projections of two points.

    Contacts in the paper are defined on a communication range over the
    land surface, hence the planar metric.
    """
    return math.hypot(a[0] - b[0], a[1] - b[1])


def distance_2d(ax: float, ay: float, bx: float, by: float) -> float:
    """Planar distance from raw coordinates (no tuple allocation)."""
    return math.hypot(ax - bx, ay - by)


def unit_direction(a: Position, b: Position) -> tuple[float, float]:
    """Unit vector of the planar direction from ``a`` to ``b``.

    Returns ``(0.0, 0.0)`` when the points coincide, which lets callers
    use the result directly in ``pos + speed * direction`` updates.
    """
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    norm = math.hypot(dx, dy)
    if norm == 0.0:
        return (0.0, 0.0)
    return (dx / norm, dy / norm)


def pairwise_distances(xy: np.ndarray) -> np.ndarray:
    """Full matrix of planar distances between ``n`` points.

    Parameters
    ----------
    xy:
        Array of shape ``(n, 2)`` (extra columns are ignored, so an
        ``(n, 3)`` position array works as-is).

    Returns
    -------
    numpy.ndarray
        Symmetric ``(n, n)`` matrix with zeros on the diagonal.
    """
    pts = np.asarray(xy, dtype=float)
    if pts.ndim != 2 or pts.shape[1] < 2:
        raise ValueError(f"expected an (n, >=2) array, got shape {pts.shape}")
    plane = pts[:, :2]
    diff = plane[:, None, :] - plane[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


def chord_length(a: Position, b: Position) -> float:
    """Straight-line (as the crow flies) planar distance.

    The paper's *travel length* sums consecutive displacement chords;
    this helper names the single-chord case for readability.
    """
    return distance(a, b)


def path_length(points: Iterable[Position | Sequence[float]]) -> float:
    """Total planar length of a polyline through ``points``.

    This is the quantity behind the paper's *travel length* metric: the
    distance covered by a user between login and logout, accumulated
    over successive observed positions.
    """
    total = 0.0
    previous: Sequence[float] | None = None
    for point in points:
        if previous is not None:
            total += distance(previous, point)
        previous = point
    return total
