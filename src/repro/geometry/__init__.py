"""Geometric primitives shared by the simulator and the analysis code.

The package deliberately stays small: positions are plain ``(x, y, z)``
triples (see :class:`~repro.geometry.vectors.Position`), bulk operations
are vectorized over numpy arrays, and the only stateful structure is the
uniform :class:`~repro.geometry.grid.SpatialGrid` used for neighbour
queries and zone-occupation statistics.
"""

from repro.geometry.vectors import (
    ORIGIN,
    Position,
    chord_length,
    distance,
    distance_2d,
    pairwise_distances,
    path_length,
    unit_direction,
)
from repro.geometry.grid import (
    CellIndex,
    SpatialGrid,
    cell_of,
    flat_cell_indices,
    grid_shape,
    iter_cells,
    occupancy_counts,
    planar_neighbour_pairs,
)
from repro.geometry.paths import Path, Segment

__all__ = [
    "ORIGIN",
    "Position",
    "chord_length",
    "distance",
    "distance_2d",
    "pairwise_distances",
    "path_length",
    "unit_direction",
    "CellIndex",
    "SpatialGrid",
    "cell_of",
    "flat_cell_indices",
    "grid_shape",
    "iter_cells",
    "occupancy_counts",
    "planar_neighbour_pairs",
    "Path",
    "Segment",
]
