"""The random-waypoint baseline.

Pick a uniform destination, walk to it at a uniform speed, pause, and
repeat.  Used as the structureless null model in the mobility-model
ablation: random waypoint spreads users evenly, so it cannot reproduce
the hot-spot concentration, the high clustering, or the heavy contact
tails of the measured traces.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Position
from repro.mobility.base import DEFAULT_MAX_SPEED, DEFAULT_MIN_SPEED, Leg, MobilityModel
from repro.stats import Uniform


class RandomWaypoint(MobilityModel):
    """Classical random-waypoint mobility on a rectangular land."""

    def __init__(
        self,
        width: float,
        height: float,
        min_speed: float = DEFAULT_MIN_SPEED,
        max_speed: float = DEFAULT_MAX_SPEED,
        min_pause: float = 0.0,
        max_pause: float = 120.0,
    ) -> None:
        super().__init__(width, height)
        if min_speed <= 0:
            raise ValueError(
                f"min_speed must be positive (zero speed stalls the model), got {min_speed}"
            )
        self._speed = Uniform(min_speed, max_speed)
        if max_pause < min_pause:
            raise ValueError(f"empty pause range [{min_pause}, {max_pause}]")
        self.min_pause = float(min_pause)
        self.max_pause = float(max_pause)

    def initial_position(self, rng: np.random.Generator) -> Position:
        """Uniform over the land."""
        return self.uniform_point(rng)

    def next_leg(self, position: Position, rng: np.random.Generator) -> Leg:
        """Uniform destination, uniform speed, uniform pause."""
        target = self.uniform_point(rng)
        speed = float(self._speed.sample(rng))
        if self.max_pause == self.min_pause:
            pause = self.min_pause
        else:
            pause = float(rng.uniform(self.min_pause, self.max_pause))
        return self.straight_leg(position, target, speed, pause)
