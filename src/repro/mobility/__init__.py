"""Mobility models that drive avatars across a land.

All models share one contract (:class:`~repro.mobility.base.
MobilityModel`): given the avatar's current position, produce the next
*leg* — a path to walk, a speed, and a pause to take on arrival.  The
world engine owns the clock; models own the geometry.

Models are deterministic given the seeded generator they are handed:
all randomness flows through the ``rng`` argument, never through
module-level or instance state, so a fixed world seed reproduces every
trajectory bit-for-bit.  Most models are stateless per avatar; models
with per-avatar memory thread it through the state hooks on
:class:`~repro.mobility.base.MobilityModel` (see ``base.py``).

Five synthetic families are provided:

* :class:`~repro.mobility.poi.PoiMobility` — attraction to weighted
  points of interest with heavy-tailed dwell times.  This is the
  mechanism the paper hypothesizes behind its observations ("users in
  Second Life revolve around several points of interest traveling in
  general short distances") and is what the calibrated land presets
  use.
* :class:`~repro.mobility.random_waypoint.RandomWaypoint` — the
  classical synthetic baseline.
* :class:`~repro.mobility.levy.LevyWalk` — the Lévy-walk model of
  human mobility (Rhee et al., INFOCOM 2008), cited by the paper as
  the real-world comparison point.
* :class:`~repro.mobility.gauss_markov.GaussMarkov` — velocity-
  correlated motion (AR(1) speed and heading with memory ``alpha``);
  the package's first stateful model.
* :class:`~repro.mobility.random_direction.RandomDirection` — uniform
  headings walked border to border; the density-unbiased baseline.

Plus :class:`~repro.mobility.static.StaticModel` for camper/AFK
avatars that stand still.
"""

from repro.mobility.base import Leg, MobilityModel
from repro.mobility.poi import PointOfInterest, PoiMobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.levy import LevyWalk
from repro.mobility.gauss_markov import GaussMarkov, GaussMarkovState
from repro.mobility.random_direction import RandomDirection
from repro.mobility.static import StaticModel

__all__ = [
    "Leg",
    "MobilityModel",
    "PointOfInterest",
    "PoiMobility",
    "RandomWaypoint",
    "LevyWalk",
    "GaussMarkov",
    "GaussMarkovState",
    "RandomDirection",
    "StaticModel",
]
