"""The mobility-model contract.

A model is *stateless per avatar* by default: every decision is a
function of the avatar's current position and the shared random
generator.  This keeps one model instance usable by hundreds of
avatars and makes decisions unit-testable in isolation (feed a
position, inspect the leg).

Models with per-avatar memory (e.g. the velocity-correlated
:class:`~repro.mobility.gauss_markov.GaussMarkov`) override the
*state hooks* instead: :meth:`MobilityModel.initial_state` seeds an
opaque memory value when the avatar logs in, and
:meth:`MobilityModel.next_leg_from` threads it through every decision.
The avatar owns the state object; the model instance itself stays
shared and immutable, so the determinism contract is unchanged — all
randomness still flows through the generator argument, never through
module-level or instance state.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.geometry import Path, Position

#: Default avatar walking speed range in m/s.  The SL client walks
#: avatars at roughly 3.2 m/s; users alternate walking and short runs,
#: which a modest range around that value captures.
DEFAULT_MIN_SPEED = 1.2
DEFAULT_MAX_SPEED = 4.0


@dataclass(frozen=True)
class Leg:
    """One decided movement: walk ``path`` at ``speed``, then pause.

    ``pause`` may be 0 (keep moving immediately).  A leg with a
    single-waypoint path is a pure pause at the current position.
    """

    path: Path
    speed: float
    pause: float

    def __post_init__(self) -> None:
        if self.speed < 0:
            raise ValueError(f"speed must be non-negative, got {self.speed}")
        if self.speed == 0 and self.path.length > 0:
            raise ValueError("cannot cover a non-trivial path at zero speed")
        if self.pause < 0:
            raise ValueError(f"pause must be non-negative, got {self.pause}")

    @property
    def travel_seconds(self) -> float:
        """Time the walking part of the leg takes."""
        if self.path.length == 0.0:
            return 0.0
        return self.path.length / self.speed

    @property
    def total_seconds(self) -> float:
        """Walking plus pausing time."""
        return self.travel_seconds + self.pause


class MobilityModel(abc.ABC):
    """Decides where an avatar goes next.

    Implementations must be deterministic given the ``rng`` stream:
    all randomness flows through the generator argument, never through
    module-level state.
    """

    def __init__(self, width: float, height: float) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"land must have positive size, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)

    @abc.abstractmethod
    def initial_position(self, rng: np.random.Generator) -> Position:
        """Where a freshly logged-in avatar materializes."""

    @abc.abstractmethod
    def next_leg(self, position: Position, rng: np.random.Generator) -> Leg:
        """The avatar's next movement decision from ``position``."""

    # -- per-avatar state hooks -----------------------------------------

    def initial_state(self, position: Position, rng: np.random.Generator):
        """Per-avatar mobility memory, seeded once at login.

        Stateless models (the default) return ``None``.  Stateful
        models return an opaque value the avatar carries and hands
        back on every :meth:`next_leg_from` call.
        """
        return None

    def next_leg_from(
        self, position: Position, state, rng: np.random.Generator
    ) -> tuple[Leg, object]:
        """The next movement decision, threading per-avatar ``state``.

        Returns ``(leg, new_state)``.  The default implementation
        ignores state and delegates to :meth:`next_leg`, so stateless
        models only ever implement the two abstract methods.
        """
        return self.next_leg(position, rng), state

    # -- shared helpers -------------------------------------------------

    def clamp(self, x: float, y: float) -> Position:
        """Fold a point back inside the land bounds."""
        return Position(
            min(max(x, 0.0), self.width),
            min(max(y, 0.0), self.height),
        )

    def uniform_point(self, rng: np.random.Generator) -> Position:
        """A uniformly random point on the land."""
        return Position(
            float(rng.uniform(0.0, self.width)),
            float(rng.uniform(0.0, self.height)),
        )

    def straight_leg(
        self,
        origin: Position,
        target: Position,
        speed: float,
        pause: float,
    ) -> Leg:
        """Build the common straight-line leg."""
        return Leg(Path.from_points([origin, target]), speed, pause)

    def reflect(self, x: float, y: float) -> Position:
        """Mirror a point back inside the land (billiard reflection).

        Preserves step-length distributions better than clamping,
        which piles probability mass on the walls.
        """
        return Position(
            self._reflect_axis(x, self.width),
            self._reflect_axis(y, self.height),
        )

    @staticmethod
    def _reflect_axis(value: float, bound: float) -> float:
        period = 2.0 * bound
        value = math.fmod(value, period)
        if value < 0.0:
            value += period
        if value > bound:
            value = period - value
        return value
