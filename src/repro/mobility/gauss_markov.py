"""Gauss–Markov mobility (Liang & Haas; Camp, Boleng & Davies survey).

Velocity is a first-order autoregressive process: at every decision
epoch the avatar's speed and heading are pulled toward their means
with memory ``alpha``,

    s_n = alpha * s_{n-1} + (1 - alpha) * s_mean
          + sqrt(1 - alpha^2) * sigma_s * w_s
    d_n = alpha * d_{n-1} + (1 - alpha) * d_mean
          + sqrt(1 - alpha^2) * sigma_d * w_d

with ``w_s, w_d`` standard normal.  ``alpha = 0`` degenerates to a
memoryless random walk; ``alpha -> 1`` approaches straight-line
motion.  The lag-1 autocorrelation of the sampled speed sequence is
``alpha`` — the property the statistical tests pin.

This is the package's first *stateful* model: the per-avatar velocity
memory lives in an opaque state value threaded through
:meth:`~repro.mobility.base.MobilityModel.next_leg_from` (see
``base.py``), so one model instance still serves hundreds of avatars.
Determinism is unchanged: given the same seed and call sequence the
trajectory is bit-for-bit reproducible, because every random draw
flows through the generator argument.

Near a border the mean heading is overridden to point back toward the
land centre (the standard edge treatment), and targets that still fall
outside are reflected back inside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry import Position
from repro.mobility.base import Leg, MobilityModel


@dataclass(frozen=True)
class GaussMarkovState:
    """Per-avatar velocity memory: current speed (m/s) and heading.

    ``mean_direction`` is the avatar's personal asymptotic heading in
    radians, drawn once at login and steered toward the land centre
    while the avatar is inside the edge margin.
    """

    speed: float
    direction: float
    mean_direction: float


class GaussMarkov(MobilityModel):
    """Gauss–Markov mobility on a rectangular land.

    Parameters
    ----------
    alpha:
        Memory of the velocity process, in ``[0, 1)``.  Successive
        speeds (and headings) have lag-1 autocorrelation ``alpha``.
    mean_speed:
        Asymptotic mean speed, m/s.
    speed_sigma:
        Stationary standard deviation of the speed process, m/s.
    direction_sigma:
        Stationary standard deviation of the heading process, radians.
    step_seconds:
        Decision-epoch length: the avatar walks each sampled velocity
        for this many seconds, seconds.
    edge_margin:
        Distance from a border, meters, inside which the mean heading
        is redirected toward the land centre.
    min_speed:
        Floor applied to sampled speeds, m/s (keeps legs walkable —
        the process itself is unbounded below).

    Determinism: all randomness flows through the ``rng`` argument;
    fixed seed and call order reproduce trajectories bit-for-bit.
    """

    def __init__(
        self,
        width: float,
        height: float,
        alpha: float = 0.75,
        mean_speed: float = 2.6,
        speed_sigma: float = 0.8,
        direction_sigma: float = 0.6,
        step_seconds: float = 8.0,
        edge_margin: float = 16.0,
        min_speed: float = 0.2,
    ) -> None:
        super().__init__(width, height)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        if mean_speed <= 0:
            raise ValueError(f"mean speed must be positive, got {mean_speed}")
        if speed_sigma < 0 or direction_sigma < 0:
            raise ValueError(
                f"sigmas must be non-negative, got {speed_sigma}/{direction_sigma}"
            )
        if step_seconds <= 0:
            raise ValueError(f"step must be positive, got {step_seconds}")
        if not 0.0 < min_speed <= mean_speed:
            raise ValueError(
                f"min_speed must be in (0, mean_speed], got {min_speed}"
            )
        if edge_margin < 0 or 2 * edge_margin >= min(width, height):
            raise ValueError(
                f"edge margin {edge_margin} does not fit a {width}x{height} land"
            )
        self.alpha = float(alpha)
        self.mean_speed = float(mean_speed)
        self.speed_sigma = float(speed_sigma)
        self.direction_sigma = float(direction_sigma)
        self.step_seconds = float(step_seconds)
        self.edge_margin = float(edge_margin)
        self.min_speed = float(min_speed)

    def initial_position(self, rng: np.random.Generator) -> Position:
        """Uniform over the land."""
        return self.uniform_point(rng)

    def initial_state(
        self, position: Position, rng: np.random.Generator
    ) -> GaussMarkovState:
        """Draw the login velocity from the stationary distribution."""
        speed = max(
            self.min_speed,
            float(rng.normal(self.mean_speed, self.speed_sigma)),
        )
        direction = float(rng.uniform(0.0, 2.0 * math.pi))
        return GaussMarkovState(speed, direction, direction)

    def next_leg_from(
        self, position: Position, state, rng: np.random.Generator
    ) -> tuple[Leg, GaussMarkovState]:
        """One AR(1) velocity update, walked for ``step_seconds``."""
        if not isinstance(state, GaussMarkovState):
            state = self.initial_state(position, rng)
        mean_direction = self._steered_mean(position, state.mean_direction)
        noise_scale = math.sqrt(1.0 - self.alpha * self.alpha)
        speed = (
            self.alpha * state.speed
            + (1.0 - self.alpha) * self.mean_speed
            + noise_scale * self.speed_sigma * float(rng.standard_normal())
        )
        speed = max(self.min_speed, speed)
        direction = (
            self.alpha * state.direction
            + (1.0 - self.alpha) * mean_direction
            + noise_scale * self.direction_sigma * float(rng.standard_normal())
        )
        distance = speed * self.step_seconds
        target = self.reflect(
            position.x + distance * math.cos(direction),
            position.y + distance * math.sin(direction),
        )
        leg = self.straight_leg(position, target, speed, pause=0.0)
        return leg, GaussMarkovState(speed, direction, mean_direction)

    def next_leg(self, position: Position, rng: np.random.Generator) -> Leg:
        """Stateless entry point: one step from a fresh login state."""
        leg, _ = self.next_leg_from(
            position, self.initial_state(position, rng), rng
        )
        return leg

    def _steered_mean(self, position: Position, mean_direction: float) -> float:
        """Mean heading, redirected toward the centre near a border.

        The redirect replaces the avatar's personal mean with the
        bearing to the land centre, expressed in the angle branch
        closest to the current mean so the AR update turns the short
        way round.
        """
        if (
            self.edge_margin < position.x < self.width - self.edge_margin
            and self.edge_margin < position.y < self.height - self.edge_margin
        ):
            return mean_direction
        to_centre = math.atan2(
            self.height / 2.0 - position.y, self.width / 2.0 - position.x
        )
        # Shift to_centre by whole turns until it is within pi of the
        # current mean, so blending the two angles never walks the
        # long way around the circle.
        turns = round((mean_direction - to_centre) / (2.0 * math.pi))
        return to_centre + turns * 2.0 * math.pi
