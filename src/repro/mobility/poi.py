"""Point-of-interest mobility — the paper's causal mechanism.

The measurement study concludes that "users are generally concentrated
around points of interest and travel small distances in the vast
majority of cases" and explains the Dance Island hot-spots with a
footnote: "in a discotheque users spend most of their time on the
dance floor or by the bar".  This model implements exactly that
behaviour generatively:

* a land carries weighted :class:`PointOfInterest` discs;
* an avatar inside a POI mostly *micro-moves* within it (dance-floor
  shuffling) with heavy-tailed dwell pauses;
* occasionally it relocates to another POI chosen by attractiveness,
  or — rarely — wanders to a uniformly random point, producing the
  small population of long-distance travellers the paper observes
  (~2 % of Isle of View users travel over 2000 m).

Dwell times are heavy-tailed with an exponential cut-off, which is
what turns into the power-law-plus-cut-off contact-time CCDFs of
Fig. 1 once a monitor samples the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry import Position, distance
from repro.mobility.base import (
    DEFAULT_MAX_SPEED,
    DEFAULT_MIN_SPEED,
    Leg,
    MobilityModel,
)
from repro.stats import TruncatedParetoExp, Uniform


@dataclass(frozen=True)
class PointOfInterest:
    """A circular attraction on a land.

    ``weight`` sets how often avatars choose the POI as a destination;
    ``spawn_weight`` how often fresh logins materialize there (SL
    avatars appear at landing points, typically next to the action);
    ``dwell_scale`` stretches pause times taken *at* this POI — a
    drink at the bar outlasts a shuffle on the dance floor.
    """

    name: str
    x: float
    y: float
    radius: float
    weight: float = 1.0
    spawn_weight: float = 0.0
    dwell_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"POI {self.name!r} needs a positive radius")
        if self.weight < 0 or self.spawn_weight < 0:
            raise ValueError(f"POI {self.name!r} weights must be non-negative")
        if self.dwell_scale <= 0:
            raise ValueError(f"POI {self.name!r} needs a positive dwell scale")

    @property
    def center(self) -> Position:
        """The POI's central point."""
        return Position(self.x, self.y)

    def contains(self, position: Position) -> bool:
        """True when ``position`` lies inside the POI disc."""
        return distance(self.center, position) <= self.radius


class PoiMobility(MobilityModel):
    """Attraction-driven mobility over weighted points of interest.

    Parameters
    ----------
    width, height:
        Land footprint in meters.
    pois:
        The attractions.  At least one must have positive ``weight``.
    stay_probability:
        Chance that an avatar currently inside a POI makes its next
        move *within* that POI instead of relocating.  High values
        (0.8-0.95) produce discotheque behaviour; low values an
        open-air stroll.
    explore_probability:
        Chance that a relocating avatar ignores the POIs and picks a
        uniform random point — the long-trip tail.
    dwell:
        Pause-time distribution (seconds) after each move.  The default
        is a power law with exponential cut-off, the shape the paper
        reads off its contact-time CCDFs.
    micro_move_scale:
        Fraction of the POI radius that bounds a micro-move
        displacement.
    local_wander_probability:
        Chance that an avatar *outside* every POI shuffles around its
        current spot instead of relocating — lost newcomers reading
        the map.  This is the behaviour that slows first contacts on
        sparse lands.
    local_wander_reach:
        Maximum displacement of such a local shuffle, meters.
    min_speed, max_speed:
        Walking speed range, m/s.
    """

    def __init__(
        self,
        width: float,
        height: float,
        pois: list[PointOfInterest],
        stay_probability: float = 0.85,
        explore_probability: float = 0.05,
        dwell: TruncatedParetoExp | None = None,
        micro_move_scale: float = 0.6,
        local_wander_probability: float = 0.0,
        local_wander_reach: float = 12.0,
        min_speed: float = DEFAULT_MIN_SPEED,
        max_speed: float = DEFAULT_MAX_SPEED,
    ) -> None:
        super().__init__(width, height)
        if not pois:
            raise ValueError("POI mobility needs at least one point of interest")
        if not any(poi.weight > 0 for poi in pois):
            raise ValueError("at least one POI must have positive weight")
        if not 0.0 <= stay_probability <= 1.0:
            raise ValueError(f"stay_probability must be in [0, 1], got {stay_probability}")
        if not 0.0 <= explore_probability <= 1.0:
            raise ValueError(
                f"explore_probability must be in [0, 1], got {explore_probability}"
            )
        if not 0.0 < micro_move_scale <= 1.0:
            raise ValueError(f"micro_move_scale must be in (0, 1], got {micro_move_scale}")
        if not 0.0 <= local_wander_probability <= 1.0:
            raise ValueError(
                f"local_wander_probability must be in [0, 1], got {local_wander_probability}"
            )
        if local_wander_reach <= 0:
            raise ValueError(
                f"local_wander_reach must be positive, got {local_wander_reach}"
            )
        for poi in pois:
            if not (0.0 <= poi.x <= width and 0.0 <= poi.y <= height):
                raise ValueError(f"POI {poi.name!r} lies outside the land")
        self.pois = list(pois)
        self.stay_probability = float(stay_probability)
        self.explore_probability = float(explore_probability)
        self.dwell = dwell or TruncatedParetoExp(alpha=1.4, rate=1.0 / 900.0, low=10.0, high=7200.0)
        self.micro_move_scale = float(micro_move_scale)
        self.local_wander_probability = float(local_wander_probability)
        self.local_wander_reach = float(local_wander_reach)
        self._speed = Uniform(min_speed, max_speed)
        weights = np.array([poi.weight for poi in pois], dtype=float)
        self._destination_p = weights / weights.sum()
        spawn_weights = np.array([poi.spawn_weight for poi in pois], dtype=float)
        self._spawn_p = (
            spawn_weights / spawn_weights.sum() if spawn_weights.sum() > 0 else None
        )

    # -- model interface -------------------------------------------------

    def initial_position(self, rng: np.random.Generator) -> Position:
        """Materialize at a landing POI, or uniformly when none is set."""
        if self._spawn_p is None:
            return self.uniform_point(rng)
        poi = self.pois[int(rng.choice(len(self.pois), p=self._spawn_p))]
        return self.point_within(poi, rng)

    def next_leg(self, position: Position, rng: np.random.Generator) -> Leg:
        """Micro-move, local wander, POI relocation, or exploration."""
        current = self.poi_at(position)
        speed = float(self._speed.sample(rng))
        base_pause = float(self.dwell.sample(rng))

        if current is not None and rng.random() < self.stay_probability:
            target = self.micro_target(current, position, rng)
            return self.straight_leg(position, target, speed, base_pause * current.dwell_scale)

        if current is None and rng.random() < self.local_wander_probability:
            target = self.local_target(position, rng)
            return self.straight_leg(position, target, speed, base_pause)

        if rng.random() < self.explore_probability:
            return self.straight_leg(position, self.uniform_point(rng), speed, base_pause)

        destination = self.choose_destination(rng, exclude=current)
        target = self.point_within(destination, rng)
        return self.straight_leg(
            position, target, speed, base_pause * destination.dwell_scale
        )

    # -- POI geometry ------------------------------------------------------

    def poi_at(self, position: Position) -> PointOfInterest | None:
        """The POI disc containing ``position`` (nearest centre wins)."""
        best: PointOfInterest | None = None
        best_distance = math.inf
        for poi in self.pois:
            d = distance(poi.center, position)
            if d <= poi.radius and d < best_distance:
                best = poi
                best_distance = d
        return best

    def choose_destination(
        self,
        rng: np.random.Generator,
        exclude: PointOfInterest | None = None,
    ) -> PointOfInterest:
        """Weight-proportional POI choice, avoiding ``exclude`` if possible."""
        if exclude is None or len(self.pois) == 1:
            index = int(rng.choice(len(self.pois), p=self._destination_p))
            return self.pois[index]
        weights = np.array(
            [0.0 if poi is exclude else poi.weight for poi in self.pois], dtype=float
        )
        total = weights.sum()
        if total == 0.0:
            # Every other POI has zero weight; stay with the global law.
            index = int(rng.choice(len(self.pois), p=self._destination_p))
            return self.pois[index]
        index = int(rng.choice(len(self.pois), p=weights / total))
        return self.pois[index]

    def point_within(self, poi: PointOfInterest, rng: np.random.Generator) -> Position:
        """A point inside the POI disc, denser toward the centre.

        Gaussian with sigma = radius/2, redrawn until inside the disc
        (a handful of tries suffice; the tail falls back to the centre
        so the method always terminates).
        """
        sigma = poi.radius / 2.0
        for _attempt in range(16):
            x = poi.x + float(rng.normal(0.0, sigma))
            y = poi.y + float(rng.normal(0.0, sigma))
            candidate = self.clamp(x, y)
            if poi.contains(candidate):
                return candidate
        return poi.center

    def local_target(self, position: Position, rng: np.random.Generator) -> Position:
        """A short shuffle around the current (non-POI) spot."""
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        step = float(rng.uniform(0.0, self.local_wander_reach))
        return self.clamp(
            position.x + step * math.cos(angle),
            position.y + step * math.sin(angle),
        )

    def micro_target(
        self,
        poi: PointOfInterest,
        position: Position,
        rng: np.random.Generator,
    ) -> Position:
        """A short displacement that stays inside the current POI."""
        reach = poi.radius * self.micro_move_scale
        for _attempt in range(16):
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            step = float(rng.uniform(0.0, reach))
            candidate = self.clamp(
                position.x + step * math.cos(angle),
                position.y + step * math.sin(angle),
            )
            if poi.contains(candidate):
                return candidate
        return poi.center
