"""Static (camper) mobility.

The paper notes that "lands with a large population are usually built
to distribute virtual money: all a user has to do is to sit and wait".
Camper avatars are the embodiment: they log in at a fixed spot and
never move.  Presets mix a small camper fraction into busy lands to
model AFK users, and the zone-occupation analysis must cope with them.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Path, Position
from repro.mobility.base import Leg, MobilityModel


class StaticModel(MobilityModel):
    """Avatars that appear somewhere and stand still forever.

    ``anchor`` pins all avatars to one point (a money tree, a camping
    chair); ``region`` — a ``(cx, cy, radius)`` disc — scatters each
    avatar's own spot inside an area (a sandbox where builders work
    alone); with neither, every avatar picks a uniform spot at login.
    """

    def __init__(
        self,
        width: float,
        height: float,
        anchor: Position | None = None,
        region: tuple[float, float, float] | None = None,
        idle_seconds: float = 600.0,
    ) -> None:
        super().__init__(width, height)
        if idle_seconds <= 0:
            raise ValueError(f"idle_seconds must be positive, got {idle_seconds}")
        if anchor is not None and region is not None:
            raise ValueError("give either an anchor or a region, not both")
        if anchor is not None and not (
            0.0 <= anchor.x <= width and 0.0 <= anchor.y <= height
        ):
            raise ValueError("anchor lies outside the land")
        if region is not None:
            cx, cy, radius = region
            if radius <= 0:
                raise ValueError(f"region radius must be positive, got {radius}")
            if not (0.0 <= cx <= width and 0.0 <= cy <= height):
                raise ValueError("region centre lies outside the land")
        self.anchor = anchor
        self.region = region
        self.idle_seconds = float(idle_seconds)

    def initial_position(self, rng: np.random.Generator) -> Position:
        """The anchor, a point in the region, or a uniform point."""
        if self.anchor is not None:
            return self.anchor
        if self.region is not None:
            cx, cy, radius = self.region
            angle = float(rng.uniform(0.0, 2.0 * np.pi))
            # sqrt for an area-uniform draw inside the disc.
            rho = radius * float(np.sqrt(rng.random()))
            return self.clamp(cx + rho * np.cos(angle), cy + rho * np.sin(angle))
        return self.uniform_point(rng)

    def next_leg(self, position: Position, rng: np.random.Generator) -> Leg:
        """A pure pause: zero-length path, long idle."""
        return Leg(Path.from_points([position]), speed=0.0, pause=self.idle_seconds)
