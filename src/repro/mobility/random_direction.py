"""Random-direction mobility (Royer, Melliar-Smith & Moser).

Pick a uniform heading, walk all the way to the land border along it,
pause, and repeat.  Unlike random waypoint — whose uniform *waypoints*
concentrate crossings through the centre — random direction spends
uniform time per unit border and keeps the stationary node density
nearly uniform, which is why it is the standard unbiased synthetic
baseline.

The model is stateless: each decision is a pure function of the
current position and the shared generator, so the base
:class:`~repro.mobility.base.MobilityModel` contract applies
unchanged.  Determinism: all randomness flows through the ``rng``
argument; a fixed seed reproduces trajectories bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry import Position
from repro.mobility.base import DEFAULT_MAX_SPEED, DEFAULT_MIN_SPEED, Leg, MobilityModel
from repro.stats import Uniform

#: Headings whose border exit is closer than this, meters, are
#: re-drawn (the avatar is standing on the border looking out).
_MIN_EXIT_DISTANCE = 1e-6


class RandomDirection(MobilityModel):
    """Classical random-direction mobility on a rectangular land.

    Parameters
    ----------
    min_speed, max_speed:
        Uniform walking-speed range, m/s.
    min_pause, max_pause:
        Uniform border-pause range, seconds.

    Headings are uniform on ``[0, 2*pi)``; every leg ends on the land
    border (travel distance = exit distance along the heading).
    """

    def __init__(
        self,
        width: float,
        height: float,
        min_speed: float = DEFAULT_MIN_SPEED,
        max_speed: float = DEFAULT_MAX_SPEED,
        min_pause: float = 0.0,
        max_pause: float = 60.0,
    ) -> None:
        super().__init__(width, height)
        if min_speed <= 0:
            raise ValueError(
                f"min_speed must be positive (zero speed stalls the model), got {min_speed}"
            )
        self._speed = Uniform(min_speed, max_speed)
        if max_pause < min_pause:
            raise ValueError(f"empty pause range [{min_pause}, {max_pause}]")
        self.min_pause = float(min_pause)
        self.max_pause = float(max_pause)

    def initial_position(self, rng: np.random.Generator) -> Position:
        """Uniform over the land."""
        return self.uniform_point(rng)

    def next_leg(self, position: Position, rng: np.random.Generator) -> Leg:
        """Uniform heading to the border, uniform speed, uniform pause."""
        while True:
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            exit_distance = self._exit_distance(position, angle)
            if exit_distance > _MIN_EXIT_DISTANCE:
                break
        target = self.clamp(
            position.x + exit_distance * math.cos(angle),
            position.y + exit_distance * math.sin(angle),
        )
        speed = float(self._speed.sample(rng))
        if self.max_pause == self.min_pause:
            pause = self.min_pause
        else:
            pause = float(rng.uniform(self.min_pause, self.max_pause))
        return self.straight_leg(position, target, speed, pause)

    def _exit_distance(self, position: Position, angle: float) -> float:
        """Distance from ``position`` to the border along ``angle``."""
        dx = math.cos(angle)
        dy = math.sin(angle)
        t = float("inf")
        if dx > 0.0:
            t = min(t, (self.width - position.x) / dx)
        elif dx < 0.0:
            t = min(t, -position.x / dx)
        if dy > 0.0:
            t = min(t, (self.height - position.y) / dy)
        elif dy < 0.0:
            t = min(t, -position.y / dy)
        return t
