"""Lévy-walk mobility (Rhee et al., "On the Levy-walk nature of human
mobility", INFOCOM 2008 — reference [8] of the paper).

Flight lengths and pause times are heavy-tailed (truncated Pareto).
Flights pick a uniform direction; destinations that would leave the
land are reflected back inside, which preserves the step-length
distribution better than clamping to the border.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry import Position
from repro.mobility.base import Leg, MobilityModel
from repro.stats import BoundedPareto


class LevyWalk(MobilityModel):
    """Truncated Lévy walk on a rectangular land.

    Parameters
    ----------
    flight_alpha:
        Density exponent of flight lengths (Rhee et al. report values
        around 1.5-2.0 for human walks).
    pause_alpha:
        Density exponent of pause times.
    min_flight, max_flight:
        Truncation bounds for flight lengths, meters.
    min_pause, max_pause:
        Truncation bounds for pauses, seconds.
    speed:
        Constant walking speed, m/s.
    """

    def __init__(
        self,
        width: float,
        height: float,
        flight_alpha: float = 1.8,
        pause_alpha: float = 1.6,
        min_flight: float = 2.0,
        max_flight: float = 300.0,
        min_pause: float = 5.0,
        max_pause: float = 1800.0,
        speed: float = 3.0,
    ) -> None:
        super().__init__(width, height)
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self._flights = BoundedPareto(flight_alpha, min_flight, max_flight)
        self._pauses = BoundedPareto(pause_alpha, min_pause, max_pause)
        self.speed = float(speed)

    def initial_position(self, rng: np.random.Generator) -> Position:
        """Uniform over the land."""
        return self.uniform_point(rng)

    def next_leg(self, position: Position, rng: np.random.Generator) -> Leg:
        """Heavy-tailed flight in a uniform direction, heavy-tailed pause."""
        length = float(self._flights.sample(rng))
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        target = self.reflect(
            position.x + length * math.cos(angle),
            position.y + length * math.sin(angle),
        )
        pause = float(self._pauses.sample(rng))
        return self.straight_leg(position, target, self.speed, pause)
