"""Questions the paper says the relation graph would answer.

"New questions can be addressed such as the frequency and the strength
of contact between acquaintances" — these helpers compute exactly
those aggregates, plus the regularity of repeated encounters.
"""

from __future__ import annotations

import numpy as np

from repro.core.contacts import ContactInterval
from repro.social.relations import RelationGraph
from repro.stats import Summary, summarize


def acquaintance_summary(relations: RelationGraph) -> dict[str, Summary]:
    """Descriptive statistics of frequency, strength and degree."""
    if len(relations) == 0:
        raise ValueError("relation graph has no acquaintances")
    degrees = [
        relations.graph.degree(node) for node in relations.graph.nodes()
    ]
    return {
        "frequency": summarize([float(f) for f in relations.frequencies()]),
        "strength_s": summarize(relations.strengths()),
        "acquaintances_per_user": summarize([float(d) for d in degrees]),
    }


def strength_frequency_correlation(relations: RelationGraph) -> float:
    """Pearson correlation between encounter count and total time.

    Strongly positive on POI-driven traces: pairs that meet often are
    pairs that dwell together.  Near zero would mean encounters are
    interchangeable one-off events.
    """
    frequencies = np.asarray(relations.frequencies(), dtype=float)
    strengths = np.asarray(relations.strengths(), dtype=float)
    if frequencies.size < 2:
        raise ValueError("need at least two acquaintances for a correlation")
    if frequencies.std() == 0 or strengths.std() == 0:
        return 0.0
    return float(np.corrcoef(frequencies, strengths)[0, 1])


def encounter_regularity(
    contacts: list[ContactInterval],
    min_encounters: int = 3,
) -> dict[str, float]:
    """How regular are repeated meetings of acquainted pairs?

    For every pair with at least ``min_encounters`` contacts, the gaps
    between successive meetings are collected; the result reports the
    median gap and the coefficient of variation (std/mean — 1.0 for a
    memoryless process, lower for routine-like regularity).
    """
    by_pair: dict[tuple[str, str], list[ContactInterval]] = {}
    for contact in contacts:
        by_pair.setdefault(contact.pair, []).append(contact)
    gaps: list[float] = []
    for intervals in by_pair.values():
        if len(intervals) < min_encounters:
            continue
        intervals.sort(key=lambda c: c.start)
        for previous, current in zip(intervals, intervals[1:]):
            gap = current.start - previous.end
            if gap > 0:
                gaps.append(gap)
    if not gaps:
        raise ValueError(
            f"no pair reached {min_encounters} encounters; lower the threshold"
        )
    arr = np.asarray(gaps, dtype=float)
    mean = float(arr.mean())
    return {
        "pairs_gaps": float(arr.size),
        "median_gap_s": float(np.median(arr)),
        "cv": float(arr.std() / mean) if mean > 0 else 0.0,
    }
