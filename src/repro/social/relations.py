"""Building the relation graph from contact history."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.contacts import ContactInterval
from repro.netgraph import Graph


@dataclass(frozen=True)
class Acquaintance:
    """The relationship record of one user pair.

    ``frequency`` counts distinct contact intervals; ``strength`` sums
    the time the pair spent in range (seconds); ``first_met`` /
    ``last_met`` bound the relationship's observed lifetime.
    """

    user_a: str
    user_b: str
    frequency: int
    strength: float
    first_met: float
    last_met: float

    def __post_init__(self) -> None:
        if self.frequency < 1:
            raise ValueError("an acquaintance needs at least one encounter")
        if self.strength < 0:
            raise ValueError("strength cannot be negative")
        if self.last_met < self.first_met:
            raise ValueError("last encounter precedes the first")

    @property
    def pair(self) -> tuple[str, str]:
        """The user pair in canonical order."""
        return (
            (self.user_a, self.user_b)
            if self.user_a <= self.user_b
            else (self.user_b, self.user_a)
        )

    @property
    def mean_contact_duration(self) -> float:
        """Average length of one encounter, seconds."""
        return self.strength / self.frequency

    @property
    def lifetime(self) -> float:
        """Span from the first to the last encounter, seconds."""
        return self.last_met - self.first_met


class RelationGraph:
    """The weighted acquaintance network of a trace.

    Wraps a plain :class:`~repro.netgraph.Graph` (so every graph
    algorithm applies) plus the per-edge acquaintance records.
    """

    def __init__(self, acquaintances: Iterable[Acquaintance]) -> None:
        self._edges: dict[tuple[str, str], Acquaintance] = {}
        self.graph = Graph()
        for acquaintance in acquaintances:
            key = acquaintance.pair
            if key in self._edges:
                raise ValueError(f"duplicate acquaintance for pair {key}")
            self._edges[key] = acquaintance
            self.graph.add_edge(*key)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Acquaintance]:
        return iter(self._edges.values())

    @property
    def user_count(self) -> int:
        """Users with at least one acquaintance."""
        return self.graph.node_count

    def acquaintance(self, user_a: str, user_b: str) -> Acquaintance:
        """The record of one pair; raises ``KeyError`` when strangers."""
        key = (user_a, user_b) if user_a <= user_b else (user_b, user_a)
        return self._edges[key]

    def are_acquainted(self, user_a: str, user_b: str) -> bool:
        """True when the pair ever met (above the builder threshold)."""
        key = (user_a, user_b) if user_a <= user_b else (user_b, user_a)
        return key in self._edges

    def acquaintances_of(self, user: str) -> list[Acquaintance]:
        """All relationships of one user, strongest first."""
        if user not in self.graph:
            return []
        records = [
            self.acquaintance(user, other) for other in self.graph.neighbours(user)
        ]
        records.sort(key=lambda a: a.strength, reverse=True)
        return records

    def strengths(self) -> list[float]:
        """Edge strengths (total contact seconds), unordered."""
        return [a.strength for a in self._edges.values()]

    def frequencies(self) -> list[int]:
        """Edge frequencies (contact counts), unordered."""
        return [a.frequency for a in self._edges.values()]

    def strongest(self, count: int = 10) -> list[Acquaintance]:
        """The ``count`` strongest relationships."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        ranked = sorted(self._edges.values(), key=lambda a: a.strength, reverse=True)
        return ranked[:count]


def build_relation_graph(
    contacts: Iterable[ContactInterval],
    min_encounters: int = 1,
    include_censored: bool = True,
) -> RelationGraph:
    """Aggregate contact intervals into the relation graph.

    Parameters
    ----------
    contacts:
        Output of :func:`repro.core.extract_contacts` (any range).
    min_encounters:
        Pairs with fewer distinct contacts are treated as strangers —
        ``min_encounters=2`` keeps only pairs that *re*-met, the
        paper's notion of acquaintance rather than passers-by.
    include_censored:
        Whether measurement-truncated contacts count toward frequency
        and strength.
    """
    if min_encounters < 1:
        raise ValueError(f"min_encounters must be >= 1, got {min_encounters}")
    stats: dict[tuple[str, str], list[float]] = {}
    bounds: dict[tuple[str, str], tuple[float, float]] = {}
    counts: dict[tuple[str, str], int] = {}
    for contact in contacts:
        if contact.censored and not include_censored:
            continue
        key = contact.pair
        counts[key] = counts.get(key, 0) + 1
        stats.setdefault(key, []).append(contact.duration)
        first, last = bounds.get(key, (contact.start, contact.start))
        bounds[key] = (min(first, contact.start), max(last, contact.start))
    acquaintances = [
        Acquaintance(
            user_a=key[0],
            user_b=key[1],
            frequency=counts[key],
            strength=float(sum(stats[key])),
            first_met=bounds[key][0],
            last_met=bounds[key][1],
        )
        for key in counts
        if counts[key] >= min_encounters
    ]
    return RelationGraph(acquaintances)
