"""The relation graph — the paper's §5 future work, implemented.

"Another interesting area of future research would be to build the
network of 'relationships' among SL users.  Based on the 'relation
graph', new questions can be addressed such as the frequency and the
strength of contact between acquaintances."

This package builds that graph from contact history: nodes are users,
an edge appears once a pair has met at least ``min_encounters`` times,
and edges carry both the *frequency* (number of distinct contacts) and
the *strength* (total time in range) of the acquaintance.
"""

from repro.social.relations import (
    Acquaintance,
    RelationGraph,
    build_relation_graph,
)
from repro.social.metrics import (
    acquaintance_summary,
    encounter_regularity,
    strength_frequency_correlation,
)

__all__ = [
    "Acquaintance",
    "RelationGraph",
    "build_relation_graph",
    "acquaintance_summary",
    "encounter_regularity",
    "strength_frequency_correlation",
]
