"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP-517
editable installs (``pip install -e .``) cannot build a wheel.  This
shim lets ``python setup.py develop`` (and pip's legacy fallback)
install the package from ``pyproject.toml`` metadata instead.
"""

from setuptools import setup

setup()
