#!/usr/bin/env python3
"""Campus-WLAN scenario: association traces through the analyzer stack.

The IMPACT campus measurements observe mobility as *AP association
events* — every record says "device X is at access point Y", so the
trace takes values on a discrete set of a few hundred points instead
of continuous coordinates.  This example runs that observable end to
end on the `campus_wlan()` preset:

* build the kilometre-scale campus world (buildings, a Gauss–Markov
  strolling population, random-direction couriers);
* observe it with the `AssociationMonitor` over the preset's jittered
  AP grid (nearest AP within 50 m wins, out-of-range avatars vanish);
* feed the discrete trace to the unchanged analyzer stack — zone
  occupation degenerates to an AP-popularity histogram, sessions
  become association episodes, and r=1 m contacts mean "associated to
  the same AP".

Everything is deterministic from the two seeds (preset seed fixes AP
placement, world seed fixes arrivals and motion).

Run:  python examples/campus_wlan.py [--minutes 30] [--seed 7]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import TraceAnalyzer
from repro.core.report import render_summary_table
from repro.lands import campus_wlan
from repro.monitors import AssociationMonitor


def collect_trace(minutes: float, seed: int):
    """Simulate the campus and record WLAN associations for ``minutes``."""
    preset = campus_wlan()
    world = preset.build(seed=seed, start_time=12 * 3600.0)
    world.run_until(world.now + 1800.0)  # steady-state warm-up
    print(
        f"simulating {preset.name!r}: {len(preset.access_points)} APs, "
        f"{world.online_count} users online at start"
    )
    monitor = AssociationMonitor(
        preset.access_points,
        tau=10.0,
        association_range=preset.association_range,
    )
    trace = monitor.monitor(world, minutes * 60.0)
    print(
        f"trace: {len(trace)} snapshots, {len(trace.unique_users())} devices, "
        f"values on the discrete AP set"
    )
    return preset, trace


def ap_popularity(preset, trace, top: int = 8) -> None:
    """The discrete twin of zone occupation: observations per AP."""
    print("\n===== AP popularity =====")
    xy = trace.columns.xyz[:, :2]
    deltas = xy[:, None, :] - preset.access_points[None, :, :]
    ap_ids = np.argmin((deltas**2).sum(axis=2), axis=1)
    counts = np.bincount(ap_ids, minlength=len(preset.access_points))
    covered = int((counts > 0).sum())
    print(f"APs observed : {covered}/{len(counts)}")
    rows = []
    for rank, ap in enumerate(np.argsort(counts)[::-1][:top], start=1):
        x, y = preset.access_points[ap]
        rows.append(
            {
                "rank": rank,
                "ap": int(ap),
                "position": f"({x:.0f}, {y:.0f})",
                "observations": int(counts[ap]),
            }
        )
    print(render_summary_table(rows))


def association_episodes(analyzer: TraceAnalyzer) -> None:
    """Session extraction on the discrete trace = association episodes."""
    print("\n===== Association episodes (sessions) =====")
    sessions = analyzer.sessions()
    durations = [s.times[-1] - s.times[0] for s in sessions]
    print(f"episodes          : {len(sessions)}")
    print(f"median episode    : {float(np.median(durations)):.0f} s")
    print(f"longest episode   : {max(durations):.0f} s")


def same_ap_contacts(analyzer: TraceAnalyzer) -> None:
    """r=1 m contacts on AP coordinates: co-association intervals."""
    print("\n===== Same-AP contacts (r = 1 m) =====")
    ct = analyzer.contact_times(1.0)
    print(f"contacts          : {ct.n}")
    print(f"median co-dwell   : {ct.median:.0f} s")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--minutes", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    preset, trace = collect_trace(args.minutes, args.seed)
    analyzer = TraceAnalyzer(trace)
    ap_popularity(preset, trace)
    association_episodes(analyzer)
    same_ap_contacts(analyzer)


if __name__ == "__main__":
    main()
