#!/usr/bin/env python3
"""Mobility-model shoot-out: which family reproduces the paper?

The paper attributes its findings to point-of-interest attraction
("users in Second Life revolve around several points of interest
traveling in general short distances").  This example makes that
attribution testable: the same land skeleton and arrival process runs
under three mobility families —

* POI attraction (this library's generative model),
* random waypoint (the classical synthetic baseline),
* truncated Lévy walk (Rhee et al.'s model of real human walks) —

and compares the §4 signatures: contact-time tails, isolation,
clustering, hot-spot concentration, travel lengths.

Run:  python examples/mobility_model_comparison.py [--hours 1.5]
"""

from __future__ import annotations

import argparse

from repro.core import BLUETOOTH_RANGE, TraceAnalyzer
from repro.core.contacts import contact_durations
from repro.core.report import render_summary_table
from repro.lands import generic_land
from repro.monitors import Crawler
from repro.stats import compare_fits


def run_model(kind: str, hours: float, seed: int) -> dict[str, object]:
    """Simulate one mobility family and extract the signature row."""
    preset = generic_land(
        n_pois=5, hourly_rate=120.0, mean_session=1200.0, seed=31, mobility=kind
    )
    world = preset.build(seed=seed)
    trace = Crawler(tau=10.0).monitor(world, hours * 3600.0)
    analyzer = TraceAnalyzer(trace)

    contacts = analyzer.contacts(BLUETOOTH_RANGE)
    durations = contact_durations(contacts)
    best_model = "-"
    if len(durations) >= 50:
        fits = compare_fits(
            durations, models=("power_law", "exponential", "truncated_power_law")
        )
        best_model = fits[0].model

    occupancy = analyzer.zone_occupation(20.0, every=6)
    return {
        "mobility": kind,
        "ct_median_s": analyzer.contact_times(BLUETOOTH_RANGE).median,
        "ct_p99_s": round(float(analyzer.contact_times(BLUETOOTH_RANGE).quantile(0.99))),
        "isolated": round(analyzer.isolation_fraction(BLUETOOTH_RANGE, every=6), 2),
        "clustering": round(analyzer.clustering(BLUETOOTH_RANGE, every=6).median, 2),
        "max_cell": int(occupancy.max),
        "travel_p90_m": round(float(analyzer.travel_lengths().quantile(0.9))),
        "best_ct_fit": best_model,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()

    rows = []
    for kind in ("poi", "rwp", "levy"):
        print(f"simulating {kind} mobility for {args.hours:.1f} h...")
        rows.append(run_model(kind, args.hours, args.seed))

    print("\n== mobility-family signatures (same land, same arrivals) ==")
    print(render_summary_table(rows))
    print(
        "\nReading: only POI attraction shows the paper's combination — "
        "hot-spot cells with tens of users, low isolation, high "
        "clustering, short travels, and contact times best described "
        "by a power law with exponential cut-off.  Random waypoint "
        "spreads users uniformly (high isolation, no hot-spots); the "
        "Lévy walk produces heavy travel tails but no social foci."
    )


if __name__ == "__main__":
    main()
