#!/usr/bin/env python3
"""Monitoring-architecture comparison: sensors vs crawler vs truth.

Reproduces the §2 methodology decision.  All three monitors observe
the *same* world realization:

* a ground-truth monitor reading the engine state directly;
* the external crawler (the paper's instrument of choice);
* the in-world sensor network, with every platform limit the paper
  lists — 96 m range, 16 avatars per scan, 16 KB cache, rate-limited
  HTTP flushes, object expiry + replication.

The report shows what each architecture captured and what the sensor
data path lost, then demonstrates the deployment restriction on
private lands.

Run:  python examples/sensor_vs_crawler.py [--minutes 60]
"""

from __future__ import annotations

import argparse

from repro.core import TraceAnalyzer
from repro.core.report import render_summary_table
from repro.lands import dance_island
from repro.metaverse import AccessPolicy, Land, Population, SessionProcess, World
from repro.metaverse.objects import DeploymentError
from repro.mobility import RandomWaypoint
from repro.monitors import (
    Crawler,
    GroundTruthMonitor,
    SensorNetwork,
    WebServer,
    run_monitors,
)


def fidelity_study(minutes: float, seed: int) -> None:
    """Run all three monitors side by side on Dance Island."""
    preset = dance_island()
    world = preset.build(seed=seed, start_time=12 * 3600.0)
    world.run_until(world.now + 1800.0)

    truth = GroundTruthMonitor(tau=10.0)
    crawler = Crawler(tau=10.0)
    sensors = SensorNetwork(
        tau=10.0,
        webserver=WebServer(max_requests_per_minute=30),
    )
    print(f"monitoring {preset.name!r} for {minutes:.0f} simulated minutes...")
    run_monitors(world, [truth, crawler, sensors], minutes * 60.0)

    reference = truth.trace()
    ref_users = len(reference.unique_users())
    ref_records = sum(len(s) for s in reference)
    rows = []
    for label, trace in (
        ("ground truth", reference),
        ("crawler", crawler.trace()),
        ("sensor network", sensors.trace()),
    ):
        records = sum(len(s) for s in trace)
        rows.append(
            {
                "monitor": label,
                "users": len(trace.unique_users()),
                "user_coverage": f"{len(trace.unique_users()) / ref_users:.1%}",
                "records": records,
                "record_coverage": f"{records / ref_records:.1%}",
            }
        )
    print(render_summary_table(rows))

    print(f"\nsensor-side losses   : {sensors.total_dropped_records} records "
          "(cache overflow, expiry, throttled final flush)")
    stats = sensors.webserver.stats
    print(f"web server           : {stats.accepted_requests} requests accepted, "
          f"{stats.rejected_requests} throttled")

    # How much does the loss distort the headline metric?
    ct_truth = TraceAnalyzer(reference).contact_times(10.0).median
    ct_sensor = TraceAnalyzer(sensors.trace()).contact_times(10.0).median
    print(f"\ncontact-time median  : truth {ct_truth:.0f} s vs sensors {ct_sensor:.0f} s")


def private_land_demo(seed: int) -> None:
    """Private lands refuse objects; the crawler walks right in."""
    print("\n== private land (the deployment restriction) ==")
    land = Land("Walled Garden", policy=AccessPolicy.PRIVATE)
    population = Population(
        "residents",
        SessionProcess(hourly_rate=120.0),
        RandomWaypoint(land.width, land.height),
    )
    world = World(land, [population], seed=seed)
    try:
        SensorNetwork(tau=10.0).attach(world)
    except DeploymentError as error:
        print(f"sensor network: REFUSED — {error}")
    trace = Crawler(tau=10.0).monitor(world, 600.0)
    print(f"crawler       : OK — {len(trace)} snapshots, "
          f"{len(trace.unique_users())} users observed")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args()
    fidelity_study(args.minutes, args.seed)
    private_land_demo(args.seed)


if __name__ == "__main__":
    main()
