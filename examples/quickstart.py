#!/usr/bin/env python3
"""Quickstart: simulate a land, crawl it, analyze the trace.

This is the five-minute tour of the library:

1. build a world from a calibrated land preset;
2. attach the crawler (the paper's measurement instrument) and record
   a trace at τ = 10 s;
3. compute the paper's §3 metrics — contact statistics, line-of-sight
   graph properties and trip statistics — from the trace.

Run:  python examples/quickstart.py [--minutes 45] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE, TraceAnalyzer
from repro.lands import dance_island
from repro.monitors import Crawler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=45.0,
                        help="measurement window in simulated minutes")
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    args = parser.parse_args()

    # 1. A world: Dance Island at noon, warmed up so the club is busy.
    preset = dance_island()
    world = preset.build(seed=args.seed, start_time=12 * 3600.0)
    world.run_until(world.now + 1800.0)
    print(f"world ready: {world.online_count} avatars on {preset.name!r}")

    # 2. The measurement: a mimicking crawler snapshotting every 10 s.
    crawler = Crawler(tau=10.0, mimic=True)
    trace = crawler.monitor(world, duration=args.minutes * 60.0)
    print(f"trace collected: {len(trace)} snapshots, "
          f"{len(trace.unique_users())} unique users")

    # 3. The analysis: every metric of the paper from one object.
    analyzer = TraceAnalyzer(trace)
    summary = analyzer.summary()
    print(f"\n== {summary.land_name} ({summary.duration / 60.0:.0f} min) ==")
    print(f"unique users        : {summary.unique_users}")
    print(f"mean concurrent     : {summary.mean_concurrency:.1f}")

    for label, r in (("bluetooth (10 m)", BLUETOOTH_RANGE), ("wifi (80 m)", WIFI_RANGE)):
        ct = analyzer.contact_times(r)
        ict = analyzer.inter_contact_times(r)
        print(f"\n-- contacts at {label} --")
        print(f"contact time median      : {ct.median:7.0f} s  (p90 {ct.quantile(0.9):.0f} s)")
        print(f"inter-contact time median: {ict.median:7.0f} s")
        print(f"isolated user fraction   : {analyzer.isolation_fraction(r, every=6):7.2%}")

    trips = analyzer.travel_lengths()
    print("\n-- trips --")
    print(f"travel length median: {trips.median:6.0f} m  (p90 {trips.quantile(0.9):.0f} m)")
    print(f"session time median : {analyzer.travel_times().median:6.0f} s")

    occupancy = analyzer.zone_occupation(20.0, every=6)
    print(f"empty 20 m cells    : {float(occupancy.cdf(0.0)):6.1%}")
    print(f"busiest cell        : {occupancy.max:6.0f} users")


if __name__ == "__main__":
    main()
