#!/usr/bin/env python3
"""Full single-land study: regenerate every §4 figure for one land.

This walks the complete measurement pipeline the paper used on Dance
Island — world, crawler, database — and prints the numeric twin of
each figure panel (CCDF/CDF series on the paper's grids), ending with
the power-law-with-cutoff model comparison behind the Fig. 1 reading.

Run:  python examples/dance_island_analysis.py [--hours 2] [--land dance]
"""

from __future__ import annotations

import argparse

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE, TraceAnalyzer
from repro.core.contacts import contact_durations
from repro.core.report import log_grid, render_ccdf_table, render_summary_table
from repro.lands import apfel_land, dance_island, isle_of_view
from repro.monitors import Crawler
from repro.stats import compare_fits
from repro.trace import validate_trace

PRESETS = {
    "apfel": apfel_land,
    "dance": dance_island,
    "iov": isle_of_view,
}


def collect_trace(land_key: str, hours: float, seed: int):
    """Simulate the land from noon and crawl it for ``hours``."""
    preset = PRESETS[land_key]()
    world = preset.build(seed=seed, start_time=12 * 3600.0)
    world.run_until(world.now + 1800.0)  # steady-state warm-up
    print(f"simulating {preset.name!r}: {world.online_count} users online at start")
    trace = Crawler(tau=10.0).monitor(world, hours * 3600.0)
    issues = [i for i in validate_trace(trace) if i.code != "empty-snapshot"]
    print(f"trace: {len(trace)} snapshots, {len(trace.unique_users())} users, "
          f"{len(issues)} validation issues")
    return trace


def temporal_section(analyzer: TraceAnalyzer) -> None:
    """Fig. 1 for this land: CT/ICT/FT at both ranges."""
    print("\n===== Temporal analysis (Fig. 1) =====")
    grid = log_grid(10.0, 1e4, 7)
    for r, label in ((BLUETOOTH_RANGE, "r=10m"), (WIFI_RANGE, "r=80m")):
        series = {
            f"CT {label}": analyzer.contact_times(r),
            f"ICT {label}": analyzer.inter_contact_times(r),
            f"FT {label}": analyzer.first_contact_times(r),
        }
        print(f"\n-- CCDFs at {label} --")
        print(render_ccdf_table(series, grid, complementary=True))


def graph_section(analyzer: TraceAnalyzer, every: int) -> None:
    """Fig. 2 for this land: degree, diameter, clustering."""
    print("\n===== Line-of-sight networks (Fig. 2) =====")
    rows = []
    for r, label in ((BLUETOOTH_RANGE, "10m"), (WIFI_RANGE, "80m")):
        rows.append(
            {
                "range": label,
                "median_degree": analyzer.degrees(r, every).median,
                "isolated": round(analyzer.isolation_fraction(r, every), 3),
                "median_diameter": analyzer.diameters(r, every).median,
                "max_diameter": analyzer.diameters(r, every).max,
                "median_clustering": round(analyzer.clustering(r, every).median, 3),
            }
        )
    print(render_summary_table(rows))


def spatial_section(analyzer: TraceAnalyzer, every: int) -> None:
    """Figs. 3 & 4 for this land: occupancy and trips."""
    print("\n===== Spatial analysis (Figs. 3 & 4) =====")
    occupancy = analyzer.zone_occupation(20.0, every)
    print(f"empty 20 m cells : {float(occupancy.cdf(0.0)):.1%}")
    print(f"busiest cell      : {occupancy.max:.0f} users")
    trips = {
        "travel length (m)": analyzer.travel_lengths(),
        "effective travel time (s)": analyzer.effective_travel_times(),
        "travel time (s)": analyzer.travel_times(),
    }
    rows = [
        {
            "metric": name,
            "median": round(ecdf.median, 1),
            "p90": round(float(ecdf.quantile(0.9)), 1),
            "max": round(ecdf.max, 1),
        }
        for name, ecdf in trips.items()
    ]
    print(render_summary_table(rows))


def shape_section(analyzer: TraceAnalyzer) -> None:
    """The Fig. 1 reading: power law with exponential cut-off."""
    print("\n===== Distribution shape (the paper's §4 claim) =====")
    samples = contact_durations(analyzer.contacts(BLUETOOTH_RANGE))
    fits = compare_fits(
        samples, models=("power_law", "exponential", "truncated_power_law")
    )
    rows = [
        {
            "model": fit.model,
            "aic": round(fit.aic, 1),
            "params": ", ".join(f"{k}={v:.4g}" for k, v in fit.params.items()),
        }
        for fit in fits
    ]
    print(render_summary_table(rows))
    print(f"best model for contact times: {fits[0].model}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--land", choices=sorted(PRESETS), default="dance")
    parser.add_argument("--every", type=int, default=12,
                        help="snapshot stride for per-snapshot graph metrics")
    args = parser.parse_args()

    trace = collect_trace(args.land, args.hours, args.seed)
    analyzer = TraceAnalyzer(trace)
    temporal_section(analyzer)
    graph_section(analyzer, args.every)
    spatial_section(analyzer, args.every)
    shape_section(analyzer)


if __name__ == "__main__":
    main()
