#!/usr/bin/env python3
"""The paper's future work, executed: the SL 'relation graph'.

§5 of the paper: "Another interesting area of future research would be
to build the network of 'relationships' among SL users.  Based on the
'relation graph', new questions can be addressed such as the frequency
and the strength of contact between acquaintances."

This example builds that graph from a crawled trace and answers those
questions: how many pairs ever meet, how many meet repeatedly, how
strong the ties are, how regular re-encounters are, and whether the
acquaintance network is itself clustered.

Run:  python examples/relation_graph.py [--hours 2] [--land dance]
"""

from __future__ import annotations

import argparse

from repro.core import BLUETOOTH_RANGE, TraceAnalyzer
from repro.core.report import render_summary_table
from repro.lands import apfel_land, dance_island, isle_of_view
from repro.monitors import Crawler
from repro.netgraph import average_clustering, connected_components
from repro.social import (
    acquaintance_summary,
    build_relation_graph,
    encounter_regularity,
    strength_frequency_correlation,
)

PRESETS = {"apfel": apfel_land, "dance": dance_island, "iov": isle_of_view}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--land", choices=sorted(PRESETS), default="dance")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    preset = PRESETS[args.land]()
    world = preset.build(seed=args.seed, start_time=12 * 3600.0)
    world.run_until(world.now + 1800.0)
    print(f"crawling {preset.name!r} for {args.hours:.1f} h...")
    trace = Crawler(tau=10.0).monitor(world, args.hours * 3600.0)
    contacts = TraceAnalyzer(trace).contacts(BLUETOOTH_RANGE)
    print(f"{len(trace.unique_users())} users, {len(contacts)} contact intervals")

    # Build the graph at two acquaintance thresholds.
    met_once = build_relation_graph(contacts, min_encounters=1)
    acquainted = build_relation_graph(contacts, min_encounters=2)
    print(f"\npairs that ever met      : {len(met_once)}")
    print(f"pairs that re-met        : {len(acquainted)} "
          f"({len(acquainted) / max(len(met_once), 1):.0%})")

    print("\n== frequency & strength of contact between acquaintances ==")
    summary = acquaintance_summary(met_once)
    rows = [
        {
            "metric": name,
            **{k: round(v, 1) for k, v in s.row().items() if k in ("median", "p90", "max")},
        }
        for name, s in summary.items()
    ]
    print(render_summary_table(rows))
    print(f"frequency-strength correlation: "
          f"{strength_frequency_correlation(met_once):.3f}")

    try:
        regularity = encounter_regularity(contacts, min_encounters=3)
        print(f"re-encounter gaps (pairs with >=3 meetings): "
              f"median {regularity['median_gap_s']:.0f}s, CV {regularity['cv']:.2f}")
    except ValueError:
        print("no pair reached 3 encounters in this window")

    print("\n== structure of the relation graph ==")
    graph = met_once.graph
    components = connected_components(graph)
    print(f"users with acquaintances : {graph.node_count}")
    print(f"relationships            : {graph.edge_count}")
    print(f"largest social component : {len(components[0]) if components else 0} users")
    print(f"social clustering        : {average_clustering(graph):.3f}")

    print("\n== strongest ties ==")
    rows = [
        {
            "pair": " & ".join(tie.pair),
            "meetings": tie.frequency,
            "together_s": round(tie.strength),
            "lifetime_s": round(tie.lifetime),
        }
        for tie in met_once.strongest(5)
    ]
    print(render_summary_table(rows))


if __name__ == "__main__":
    main()
