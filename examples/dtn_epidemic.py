#!/usr/bin/env python3
"""Trace-driven DTN study: forwarding schemes over a crawled trace.

The paper's closing motivation: "our measurements ... constitute a
useful material for trace-driven simulations of ... the performance
analysis of forwarding schemes in DTNs".  This example is that study:

1. crawl a simulated event land (Isle of View during the Valentine's
   event);
2. generate a random unicast workload between observed users;
3. replay it under epidemic, two-hop relay, first-contact and
   direct-delivery forwarding at both radio ranges;
4. report delivery ratio, median delay and copy cost.

Run:  python examples/dtn_epidemic.py [--hours 2] [--messages 80]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE
from repro.core.report import render_summary_table
from repro.dtn import (
    DirectDelivery,
    Epidemic,
    FirstContact,
    TwoHopRelay,
    compare_protocols,
    uniform_workload,
)
from repro.lands import isle_of_view
from repro.monitors import Crawler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--messages", type=int, default=80)
    parser.add_argument("--seed", type=int, default=14)
    parser.add_argument("--ttl-minutes", type=float, default=None,
                        help="optional message TTL (default: unlimited)")
    args = parser.parse_args()

    # Crawl the event land during the Valentine's event (10:00-14:00).
    preset = isle_of_view()
    world = preset.build(seed=args.seed, start_time=10 * 3600.0)
    world.run_until(world.now + 1800.0)
    print(f"crawling {preset.name!r} during the event "
          f"({world.online_count} users online)")
    trace = Crawler(tau=10.0).monitor(world, args.hours * 3600.0)
    print(f"trace: {len(trace)} snapshots, {len(trace.unique_users())} users")

    rng = np.random.default_rng(args.seed)
    ttl = args.ttl_minutes * 60.0 if args.ttl_minutes else float("inf")
    messages = uniform_workload(trace, args.messages, rng, ttl=ttl)
    print(f"workload: {len(messages)} unicast messages "
          f"(TTL {'unlimited' if ttl == float('inf') else f'{ttl:.0f}s'})")

    protocols = [Epidemic(), TwoHopRelay(), FirstContact(), DirectDelivery()]
    for r, label in ((BLUETOOTH_RANGE, "bluetooth 10 m"), (WIFI_RANGE, "wifi 80 m")):
        results = compare_protocols(trace, r, messages, protocols, seed=args.seed)
        print(f"\n== forwarding at {label} ==")
        print(render_summary_table([result.row() for result in results]))

    print(
        "\nReading: epidemic explores every contact opportunity, so it "
        "upper-bounds delivery and lower-bounds delay at maximal copy "
        "cost; direct delivery is the single-copy floor; two-hop and "
        "first-contact trade between them — on a POI-concentrated land "
        "even cheap schemes deliver well once the range covers a venue."
    )


if __name__ == "__main__":
    main()
