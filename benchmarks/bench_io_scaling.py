"""Trace IO scaling: memory-mapped ``.rtrc`` vs CSV parsing.

Measures load time of the binary columnar format
(:func:`repro.trace.read_trace_rtrc`, ``np.memmap``-backed) against
the CSV parser on synthetic traces of growing observation count, plus
the throughput of the batched CSV writer.

Runs two ways:

* ``pytest benchmarks/bench_io_scaling.py -s`` for the assertion
  harness (scaled down to stay quick);
* ``PYTHONPATH=src python benchmarks/bench_io_scaling.py`` for the
  full table at 1M observations (the numbers recorded in CHANGES.md).

Acceptance bar: the rtrc memmap load of a 1M-observation trace is
>= 10x faster than the CSV parse (in practice it is hundreds of times
faster — the load is four ``np.memmap`` calls plus a JSON header).
"""

from __future__ import annotations

import time

import numpy as np

from repro.trace import (
    Trace,
    read_trace_csv,
    read_trace_rtrc,
    write_trace_csv,
    write_trace_rtrc,
)
from repro.trace.columnar import ColumnarStore, UserInterner

#: (snapshots, users-per-snapshot) per sweep point; observations = S * U.
SIZES = ((100, 200), (400, 500), (1000, 1000))

#: Write throughput floor for the batched CSV writer, rows per second.
#: The dev container sustains ~400-500k rows/s; the floor is set low
#: enough to absorb slow CI machines while still catching a fall back
#: to per-row formatting (~a 3x margin).
CSV_WRITE_FLOOR_ROWS_PER_S = 120_000.0

#: Load-time bar: rtrc memmap load vs CSV parse.
RTRC_LOAD_SPEEDUP_FLOOR = 10.0


def _trace(snapshots: int, users: int) -> Trace:
    rng = np.random.default_rng(snapshots * 31 + users)
    times = np.arange(snapshots, dtype=np.float64) * 10.0
    offsets = np.arange(snapshots + 1, dtype=np.int64) * users
    ids = np.tile(np.arange(users, dtype=np.int64), snapshots)
    xyz = rng.uniform(0.0, 256.0, size=(snapshots * users, 3))
    store = ColumnarStore(
        times, offsets, ids, xyz, UserInterner(f"u{i:05d}" for i in range(users))
    )
    return Trace.from_columns(store)


def _timed(fn, *args) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - t0, result


def _measure(snapshots: int, users: int, tmp) -> dict[str, float]:
    trace = _trace(snapshots, users)
    rows = trace.columns.observation_count
    csv_path = tmp / "t.csv"
    rtrc_path = tmp / "t.rtrc"
    t_write_csv, _ = _timed(write_trace_csv, trace, csv_path)
    t_write_rtrc, _ = _timed(write_trace_rtrc, trace, rtrc_path)
    t_read_csv, from_csv = _timed(read_trace_csv, csv_path)
    t_read_rtrc, from_rtrc = _timed(read_trace_rtrc, rtrc_path)
    assert np.array_equal(
        from_csv.columns.user_ids, from_rtrc.columns.user_ids
    ), "formats disagree"
    # Touch the mapped columns so the comparison includes page faults.
    t0 = time.perf_counter()
    checksum = float(from_rtrc.columns.xyz.sum())
    t_touch = time.perf_counter() - t0
    assert np.isfinite(checksum)
    return {
        "rows": rows,
        "write_csv_s": t_write_csv,
        "write_rtrc_s": t_write_rtrc,
        "read_csv_s": t_read_csv,
        "read_rtrc_s": t_read_rtrc,
        "read_rtrc_touched_s": t_read_rtrc + t_touch,
        "write_rows_per_s": rows / t_write_csv,
        "load_speedup": t_read_csv / t_read_rtrc,
    }


def test_rtrc_load_beats_csv_parse(tmp_path):
    row = _measure(400, 500, tmp_path)  # 200k observations
    assert row["load_speedup"] >= RTRC_LOAD_SPEEDUP_FLOOR, (
        f"rtrc load only {row['load_speedup']:.1f}x faster than CSV "
        f"(bar: {RTRC_LOAD_SPEEDUP_FLOOR:.0f}x)"
    )


def test_csv_write_throughput(tmp_path):
    row = _measure(400, 500, tmp_path)
    assert row["write_rows_per_s"] >= CSV_WRITE_FLOOR_ROWS_PER_S, (
        f"CSV writer at {row['write_rows_per_s']:.0f} rows/s "
        f"(floor: {CSV_WRITE_FLOOR_ROWS_PER_S:.0f})"
    )


def test_rtrc_round_trip_integrity(tmp_path):
    trace = _trace(50, 40)
    write_trace_rtrc(trace, tmp_path / "t.rtrc")
    loaded = read_trace_rtrc(tmp_path / "t.rtrc")
    assert np.array_equal(loaded.columns.xyz, trace.columns.xyz)
    assert np.array_equal(loaded.columns.times, trace.columns.times)


def main() -> None:
    import tempfile
    from pathlib import Path

    print("trace IO scaling: CSV parse vs rtrc memmap load")
    header = (
        f"{'rows':>9} {'csv write':>10} {'rtrc write':>10} {'csv read':>10} "
        f"{'rtrc read':>10} {'rtrc+touch':>10} {'speedup':>8}"
    )
    print(header)
    for snapshots, users in SIZES:
        with tempfile.TemporaryDirectory() as tmp:
            row = _measure(snapshots, users, Path(tmp))
        print(
            f"{row['rows']:>9} {row['write_csv_s']:>9.2f}s {row['write_rtrc_s']:>9.3f}s "
            f"{row['read_csv_s']:>9.2f}s {row['read_rtrc_s'] * 1e3:>7.1f}ms "
            f"{row['read_rtrc_touched_s'] * 1e3:>7.1f}ms {row['load_speedup']:>7.0f}x"
        )
    print(
        f"csv write throughput at the largest size: "
        f"{row['write_rows_per_s'] / 1e3:.0f}k rows/s"
    )


if __name__ == "__main__":
    main()
