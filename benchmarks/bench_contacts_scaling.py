"""Contact-extraction scaling: grid-indexed engine vs dense reference.

Measures wall time of :func:`repro.core.contacts.extract_contacts`
(uniform-grid cell list over columnar arrays) against
:func:`extract_contacts_reference` (dense O(n²) distance matrix over
per-snapshot dicts) on random-walk traces of growing avatar count.

Runs two ways:

* ``pytest benchmarks/bench_contacts_scaling.py --benchmark-only -s``
  for the pytest-benchmark harness;
* ``PYTHONPATH=src python benchmarks/bench_contacts_scaling.py`` for a
  plain table (the numbers recorded in CHANGES.md).

The acceptance bar for the columnar refactor is a ≥5x speedup at
n = 1000 under Bluetooth range; equivalence of the two extractors is
asserted on every run at the smallest size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.contacts import (
    BLUETOOTH_RANGE,
    extract_contacts,
    extract_contacts_reference,
)
from repro.trace import random_walk_trace

#: Avatar counts for the scaling sweep.
SIZES = (50, 200, 1000)

#: Snapshots per synthetic trace (kept modest: cost is per snapshot).
STEPS = 40


def _trace(n_users: int):
    return random_walk_trace(n_users, STEPS, np.random.default_rng(n_users))


@pytest.fixture(scope="module", params=SIZES)
def scaling_trace(request):
    return request.param, _trace(request.param)


def test_grid_extractor_scaling(benchmark, scaling_trace):
    n, trace = scaling_trace
    result = benchmark.pedantic(
        extract_contacts, args=(trace, BLUETOOTH_RANGE), rounds=3, iterations=1
    )
    assert isinstance(result, list)


def test_reference_extractor_scaling(benchmark, scaling_trace):
    n, trace = scaling_trace
    result = benchmark.pedantic(
        extract_contacts_reference,
        args=(trace, BLUETOOTH_RANGE),
        rounds=1 if n >= 1000 else 3,
        iterations=1,
    )
    assert isinstance(result, list)


def test_extractors_agree_at_bench_scale():
    trace = _trace(SIZES[0])
    assert extract_contacts(trace, BLUETOOTH_RANGE) == extract_contacts_reference(
        trace, BLUETOOTH_RANGE
    )


def main() -> None:
    print(f"contact extraction, r={BLUETOOTH_RANGE} m, {STEPS} snapshots")
    print(f"{'n':>6} {'grid (s)':>10} {'dense (s)':>10} {'speedup':>8}")
    for n in SIZES:
        trace = _trace(n)
        # Warm both paths once (array caches, allocator).
        extract_contacts(trace, BLUETOOTH_RANGE)
        t0 = time.perf_counter()
        fast = extract_contacts(trace, BLUETOOTH_RANGE)
        t_grid = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = extract_contacts_reference(trace, BLUETOOTH_RANGE)
        t_dense = time.perf_counter() - t0
        assert fast == slow, f"extractors disagree at n={n}"
        print(f"{n:>6} {t_grid:>10.4f} {t_dense:>10.4f} {t_dense / t_grid:>7.1f}x")


if __name__ == "__main__":
    main()
