"""A5 — DTN forwarding replay over a collected trace (§1/§5).

The paper motivates its traces as input for 'trace-driven simulations
of communication schemes in delay tolerant networks'.  This bench
closes the loop: replay a message workload over the Isle of View trace
under four classic schemes and verify the canonical ordering —
epidemic delivers the most at the highest copy cost, direct delivery
is the single-copy floor.
"""

from repro.core.report import render_summary_table
from repro.experiments import dtn_replay_experiment


def test_dtn_replay_protocol_ordering(benchmark, config, capsys):
    rows = benchmark.pedantic(
        lambda: dtn_replay_experiment(config, message_count=40),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n[A5] DTN replay on Isle of View (r=10m)")
        print(render_summary_table(rows))
    by_protocol = {row["protocol"]: row for row in rows}

    epidemic = by_protocol["epidemic"]
    direct = by_protocol["direct"]
    two_hop = by_protocol["two-hop"]

    assert epidemic["delivery_ratio"] >= two_hop["delivery_ratio"]
    assert two_hop["delivery_ratio"] >= direct["delivery_ratio"]
    assert epidemic["mean_copies"] > two_hop["mean_copies"] > 1.0
    assert direct["mean_copies"] == 1.0
    assert epidemic["delivery_ratio"] > 0.3


def test_dtn_replay_wifi_outperforms_bluetooth(config, capsys):
    rows_b = dtn_replay_experiment(config, message_count=30, r=10.0)
    rows_w = dtn_replay_experiment(config, message_count=30, r=80.0)
    eb = {r["protocol"]: r for r in rows_b}["epidemic"]
    ew = {r["protocol"]: r for r in rows_w}["epidemic"]
    with capsys.disabled():
        print(
            f"\n[A5] Epidemic delivery: r=10m {eb['delivery_ratio']:.2f} "
            f"vs r=80m {ew['delivery_ratio']:.2f}"
        )
    assert ew["delivery_ratio"] >= eb["delivery_ratio"]
