"""Network backend vs serial: distributed contacts over loopback HTTP.

Times the contact-interval extraction of a large random-walk trace
unsharded (:func:`repro.core.extract_contacts`) and sharded on the
network backend — a loopback coordinator serving per-shard ``.rtrc``
files to spawned ``slmob worker`` processes, results streamed back as
pickled payloads.  The distributed run pays real costs the process
pool does not — worker spawn through the CLI, part bytes over HTTP,
claim polling — so the floor defends that those overheads stay
amortized by parallel extraction on a multi-core box, not that the
network backend wins outright at every scale.

Runs two ways:

* ``pytest benchmarks/bench_network_backend.py -s`` for the
  correctness smoke at reduced scale (equivalence is the point; perf
  floors live in the CI benchmark step);
* ``PYTHONPATH=src python benchmarks/bench_network_backend.py`` for
  the full table.  With >= 2 usable cores the run **fails** (exit 1)
  unless the network backend reaches
  :data:`NETWORK_OVER_SERIAL_FLOOR` of the serial wall time; on a
  single core the floor is skipped.
"""

from __future__ import annotations

import sys
import time

from bench_parallel_backends import (
    RADIUS,
    SHARDS,
    metaverse_load,
    usable_cores,
    walk_trace,
)

from repro.core import ShardedAnalyzer, extract_contacts
from repro.distributed import NetworkOptions
from repro.trace import Trace

#: Full-run workload: 400 snapshots x 1600 users = 640k observations.
FULL_SNAPSHOTS, FULL_USERS = 400, 1600

#: CI regression floor: network-backend speedup over the unsharded
#: serial extraction on the full workload, enforced when >= 2 cores
#: are usable.  The loopback protocol adds worker spawn (a full
#: Python + numpy import per worker), one HTTP part transfer per
#: shard, and pickle framing on every result, so this is a "the
#: coordination overhead stays bounded" floor, not a multi-core
#: headline; dropping under it means the protocol started eating the
#: parallelism (chatty polling, re-fetched parts, serialized claims).
NETWORK_OVER_SERIAL_FLOOR = 0.8


def measure(trace: Trace, workers: int | None = None) -> dict[str, float]:
    """Wall time of the contacts workload, serial vs network backend."""
    t0 = time.perf_counter()
    serial = extract_contacts(trace, RADIUS)
    t_serial = time.perf_counter() - t0
    spawn = workers if workers is not None else min(SHARDS, usable_cores())
    options = NetworkOptions(spawn_workers=spawn)
    with ShardedAnalyzer(
        trace, SHARDS, backend="network", network=options
    ) as sharded:
        # Warm-up on a cheap kind: pays worker spawn + part transfer
        # once, so the timed section measures steady-state dispatch.
        sharded.zone_occupation(64.0, every=max(1, len(trace) // 4))
        t0 = time.perf_counter()
        merged = sharded.contacts(RADIUS)
        t_network = time.perf_counter() - t0
    assert merged == serial, "network backend diverged from serial"
    return {
        "serial_s": t_serial,
        "network_s": t_network,
        "workers": spawn,
        "contacts": len(serial),
        "network_over_serial": t_serial / t_network,
    }


# -- pytest harness (correctness smoke at reduced scale) -------------------


def test_network_backend_agrees_with_serial():
    row = measure(walk_trace(40, 150), workers=2)  # 6k observations
    assert row["contacts"] > 0, "degenerate workload: no contacts"


# -- full table ------------------------------------------------------------


def main() -> int:
    cores = usable_cores()
    obs = FULL_SNAPSHOTS * FULL_USERS
    trace = metaverse_load(FULL_SNAPSHOTS, FULL_USERS)
    row = measure(trace)
    print(
        f"network shard backend: contacts workload, {obs} observations "
        f"(metaverse hotspot load), "
        f"r={RADIUS:g} m, k={SHARDS} shards, {row['workers']} worker(s), "
        f"{cores} usable core(s)"
    )
    print(f"{'backend':>10} {'wall':>9} {'vs serial':>10}")
    print(f"{'serial':>10} {row['serial_s']:>8.2f}s {'1.00x':>10}")
    print(
        f"{'network':>10} {row['network_s']:>8.2f}s "
        f"{row['network_over_serial']:>9.2f}x"
    )
    print(
        f"{row['contacts']} contact intervals; network over serial: "
        f"{row['network_over_serial']:.2f}x (floor {NETWORK_OVER_SERIAL_FLOOR}x)"
    )
    if cores < 2:
        print("floor skipped: single usable core, nothing to parallelize")
        return 0
    if row["network_over_serial"] < NETWORK_OVER_SERIAL_FLOOR:
        print(
            f"REGRESSION: network backend only "
            f"{row['network_over_serial']:.2f}x the unsharded serial "
            f"extraction (floor {NETWORK_OVER_SERIAL_FLOOR}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
