"""A4 — mobility-model ablation: which family reproduces the findings.

Identical land skeleton and population process, three avatar models.
POI mobility — the mechanism the paper attributes its observations to
— must produce the hot-spot concentration and high clustering; random
waypoint (structureless) must fail to.
"""

from repro.core.report import render_summary_table
from repro.experiments import ablation_mobility_models


def test_ablation_mobility_models(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: ablation_mobility_models(duration=3600.0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n[A4] Mobility-model ablation (same land, same arrivals)")
        print(render_summary_table(rows))
    by_model = {row["mobility"]: row for row in rows}

    # POI mobility concentrates users: its busiest cell beats random
    # waypoint's by a wide margin.
    assert by_model["poi"]["max_cell"] >= 2 * by_model["rwp"]["max_cell"]

    # POI mobility produces the clustered line-of-sight networks the
    # paper measures; random waypoint stays near the random-graph level.
    assert by_model["poi"]["clustering_median"] >= by_model["rwp"]["clustering_median"]

    # Dwelling together stretches contacts: POI contact times dominate.
    assert by_model["poi"]["ct_median_s"] >= by_model["rwp"]["ct_median_s"]

    # Random waypoint keeps everyone moving through open space, so
    # users are isolated at Bluetooth range far more often.
    assert by_model["rwp"]["isolation"] > by_model["poi"]["isolation"]
