"""T1 — the §3 trace-summary table (unique users, mean concurrency).

Paper numbers (24 h traces): Isle of View 2656 unique / 65 concurrent,
Dance Island 3347 / 34, Apfel Land 1568 / 13.  At bench scale (3 h
afternoon window) the unique counts scale down but the concurrency
ordering and magnitudes must hold.
"""

import pytest

from repro.core.report import render_summary_table
from repro.experiments import table1_summary
from repro.lands import PAPER_TARGETS


def test_table1_trace_summary(benchmark, analyzers, config, capsys):
    rows = benchmark.pedantic(lambda: table1_summary(config), rounds=3, iterations=1)
    with capsys.disabled():
        print("\n[T1] Trace summary (bench scale vs paper 24h counts)")
        print(render_summary_table(rows))

    by_land = {row["land"]: row for row in rows}
    # Concurrency is duration-independent; the 3 h window sits in the
    # afternoon/event part of the diurnal profile, so allow headroom.
    for land, targets in PAPER_TARGETS.items():
        measured = by_land[land]["mean_concurrent"]
        assert measured == pytest.approx(targets.mean_concurrency, rel=0.45), land
    # Apfel is the quietest land at any time of day; the Dance/IoV
    # ordering depends on the window (the IoV event boosts its
    # arrivals in the afternoon), so only the 24 h run fixes it.
    uniques = {land: by_land[land]["unique_users"] for land in by_land}
    assert uniques["Apfel Land"] < uniques["Isle of View"]
    assert uniques["Apfel Land"] < uniques["Dance Island"]


def test_population_counters_consistent(analyzers):
    for name, analyzer in analyzers.items():
        summary = analyzer.summary()
        assert summary.max_concurrency >= round(summary.mean_concurrency)
        assert summary.unique_users >= summary.max_concurrency
