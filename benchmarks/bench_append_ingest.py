"""Streaming ingestion: appender vs full rewrite, live vs full re-analysis.

Two claims of the streaming layer (PR 4) are measured:

1. **Append cost** — both strategies consume the same stream of
   ``(time, names, coords)`` snapshots.  Committing a crawl round
   through :class:`~repro.trace.RtrcAppender` writes only that
   round's rows plus one header; the batch pipeline's alternative —
   accumulate in a :class:`~repro.trace.ColumnarBuilder` and rewrite
   the whole file each round so the trace on disk stays current —
   rebuilds and rewrites the entire prefix every time, O(R) vs
   O(R²/2) bytes over R rounds.
2. **Analysis cost** — after each commit,
   :class:`~repro.core.live.LiveAnalyzer` extracts contacts over only
   the newly appended span and re-merges, where a fresh
   :class:`~repro.core.analyzer.TraceAnalyzer` re-extracts the whole
   prefix.

Runs two ways:

* ``pytest benchmarks/bench_append_ingest.py -s`` — the assertion
  harness at reduced scale with conservative floors;
* ``PYTHONPATH=src python benchmarks/bench_append_ingest.py`` — the
  full table at 1M observations (the numbers recorded in CHANGES.md).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import LiveAnalyzer, TraceAnalyzer
from repro.trace import ColumnarBuilder, RtrcAppender, Trace, write_trace_rtrc
from repro.trace.columnar import ColumnarStore, UserInterner

#: Full-run workload: 500 snapshots x 2000 users = 1M observations.
FULL_SNAPSHOTS, FULL_USERS = 500, 2000

#: Crawl rounds the stream is split into.
ROUNDS = 10

#: Contact range for the analysis comparison.
RADIUS = 10.0

#: Floors for the pytest harness (full-run numbers are higher; these
#: only catch a fall back to quadratic behaviour).  The append floor
#: is modest because at pytest scale the appender's geometric
#: capacity-doubling rewrites have not amortized yet — the dev
#: container measures ~2.1x here and 2.3x at 1M observations.  The
#: analysis floor narrowed when the run-length kernels made the
#: full-recompute baseline ~4x faster (the incremental path saves
#: re-extraction, which now costs less): ~1.3x measured, floor 1.1.
APPEND_SPEEDUP_FLOOR = 1.3
ANALYSIS_SPEEDUP_FLOOR = 1.1


def _trace(snapshots: int, users: int) -> Trace:
    rng = np.random.default_rng(snapshots * 31 + users)
    times = np.arange(snapshots, dtype=np.float64) * 10.0
    offsets = np.arange(snapshots + 1, dtype=np.int64) * users
    ids = np.tile(np.arange(users, dtype=np.int64), snapshots)
    xyz = rng.uniform(0.0, 256.0, size=(snapshots * users, 3))
    store = ColumnarStore(
        times, offsets, ids, xyz, UserInterner(f"u{i:05d}" for i in range(users))
    )
    return Trace.from_columns(store)


def _round_edges(snapshots: int, rounds: int) -> np.ndarray:
    return np.linspace(0, snapshots, rounds + 1).astype(int)


def _snapshot_feed(trace: Trace) -> list[tuple[float, list[str], np.ndarray]]:
    """The crawl as a stream of ``(time, names, coords)`` snapshots."""
    cols = trace.columns
    feed = []
    for index in range(cols.snapshot_count):
        lo, hi = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
        feed.append((float(cols.times[index]), cols.names_of(index), cols.xyz[lo:hi]))
    return feed


def _stream_round(appender: RtrcAppender, feed, lo: int, hi: int) -> None:
    for t, names, coords in feed[lo:hi]:
        appender.append_snapshot(t, names, coords)


def measure_append(trace: Trace, rounds: int, tmp) -> dict[str, float]:
    """Seconds to persist ``rounds`` crawl rounds, both strategies."""
    edges = _round_edges(len(trace), rounds)
    feed = _snapshot_feed(trace)

    t0 = time.perf_counter()
    with RtrcAppender(tmp / "stream.rtrc", trace.metadata) as appender:
        for lo, hi in zip(edges[:-1], edges[1:]):
            _stream_round(appender, feed, int(lo), int(hi))
            appender.commit()
    t_append = time.perf_counter() - t0

    t0 = time.perf_counter()
    builder = ColumnarBuilder()
    for lo, hi in zip(edges[:-1], edges[1:]):
        for t, names, coords in feed[int(lo):int(hi)]:
            builder.append_snapshot(t, names, coords)
        prefix = Trace.from_columns(builder.build(), trace.metadata)
        write_trace_rtrc(prefix, tmp / "rewrite.rtrc")
    t_rewrite = time.perf_counter() - t0

    return {
        "append_s": t_append,
        "rewrite_s": t_rewrite,
        "speedup": t_rewrite / t_append,
    }


def measure_analysis(trace: Trace, rounds: int, tmp) -> dict[str, float]:
    """Seconds of per-round contact analysis, incremental vs full."""
    edges = _round_edges(len(trace), rounds)
    feed = _snapshot_feed(trace)
    path = tmp / "live.rtrc"

    t_live = 0.0
    t_full = 0.0
    with RtrcAppender(path, trace.metadata) as appender:
        live = LiveAnalyzer(path)
        for lo, hi in zip(edges[:-1], edges[1:]):
            _stream_round(appender, feed, int(lo), int(hi))
            appender.commit()

            t0 = time.perf_counter()
            live.refresh()
            incremental = live.contacts(RADIUS)
            t_live += time.perf_counter() - t0

            prefix = Trace.from_columns(
                trace.columns.slice_snapshots(0, int(hi)), trace.metadata
            )
            t0 = time.perf_counter()
            full = TraceAnalyzer(prefix).contacts(RADIUS)
            t_full += time.perf_counter() - t0
            assert incremental == full, "incremental analysis diverged"
        live.close()

    return {
        "live_s": t_live,
        "full_s": t_full,
        "speedup": t_full / t_live,
    }


def test_append_beats_full_rewrite(tmp_path):
    # Enough rounds for the O(R) vs O(R^2/2) byte counts to separate.
    trace = _trace(240, 400)  # 96k observations
    row = measure_append(trace, 24, tmp_path)
    assert row["speedup"] >= APPEND_SPEEDUP_FLOOR, (
        f"streaming appends only {row['speedup']:.1f}x faster than "
        f"per-round full rewrites (floor: {APPEND_SPEEDUP_FLOOR:.1f}x)"
    )


def test_incremental_analysis_beats_recompute(tmp_path):
    trace = _trace(120, 300)
    row = measure_analysis(trace, 8, tmp_path)
    assert row["speedup"] >= ANALYSIS_SPEEDUP_FLOOR, (
        f"live analysis only {row['speedup']:.1f}x faster than full "
        f"recomputes (floor: {ANALYSIS_SPEEDUP_FLOOR:.1f}x)"
    )


def test_streamed_store_loads_identically(tmp_path):
    from repro.trace import read_trace_rtrc

    trace = _trace(40, 50)
    edges = _round_edges(len(trace), 4)
    feed = _snapshot_feed(trace)
    with RtrcAppender(tmp_path / "s.rtrc", trace.metadata) as appender:
        for lo, hi in zip(edges[:-1], edges[1:]):
            _stream_round(appender, feed, int(lo), int(hi))
            appender.commit()
    loaded = read_trace_rtrc(tmp_path / "s.rtrc")
    assert np.array_equal(loaded.columns.times, trace.columns.times)
    assert np.array_equal(loaded.columns.xyz, trace.columns.xyz)


def main() -> None:
    import tempfile
    from pathlib import Path

    trace = _trace(FULL_SNAPSHOTS, FULL_USERS)
    rows = trace.columns.observation_count
    print(
        f"streaming ingestion at {rows} observations, {ROUNDS} rounds "
        f"(r={RADIUS:g} m)"
    )
    with tempfile.TemporaryDirectory() as tmp:
        append = measure_append(trace, ROUNDS, Path(tmp))
    print(
        f"persist   : appender {append['append_s']:8.3f}s   "
        f"per-round rewrite {append['rewrite_s']:8.3f}s   "
        f"= {append['speedup']:.1f}x"
    )
    with tempfile.TemporaryDirectory() as tmp:
        analysis = measure_analysis(trace, ROUNDS, Path(tmp))
    print(
        f"analysis  : live     {analysis['live_s']:8.3f}s   "
        f"full recompute    {analysis['full_s']:8.3f}s   "
        f"= {analysis['speedup']:.1f}x"
    )


if __name__ == "__main__":
    main()
