"""Parallel live analysis over a shard directory vs the serial path.

PR 4's :class:`~repro.core.LiveAnalyzer` followed a single appendable
``.rtrc`` store and extracted every part serially; with the part
scheduler, a shard directory grown by
:class:`~repro.trace.RtrcDirAppender` (one immutable file per
committed crawl round) can fan those extractions over spawned workers
that memmap-load the round files directly.  This benchmark measures
the late-follower / backfill case that parallelism exists for: a
fresh analyzer opens an already-grown directory and computes the
contacts workload over every committed round at once.

Runs two ways:

* ``pytest benchmarks/bench_live_shard_dir.py -s`` — the assertion
  harness (equivalence smoke at reduced scale; the perf floor lives
  in the CI benchmark step where the workload amortizes spawn);
* ``PYTHONPATH=src python benchmarks/bench_live_shard_dir.py`` — the
  full 1M-observation table.  With >= 2 usable cores the run
  **fails** (exit 1) unless the process backend beats the serial
  analyzer by :data:`PROCESS_OVER_SERIAL_FLOOR`; on a single core the
  floor is reported as skipped — there is no parallelism to measure
  (the same convention as ``bench_parallel_backends.py``).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_parallel_backends import usable_cores, walk_trace
from repro.core import LiveAnalyzer, extract_contacts
from repro.trace import RtrcDirAppender, Trace

#: Full-run workload: 500 snapshots x 2000 users = 1M observations.
FULL_SNAPSHOTS, FULL_USERS = 500, 2000

#: Crawl rounds the stream is committed in (= shard files = parts).
ROUNDS = 8

#: Contact range (metres) — ~10 in-range neighbours per user.
RADIUS = 10.0

#: CI regression floor: process-backend speedup over the serial live
#: analyzer on the catch-up contacts workload, enforced when >= 2
#: cores are usable.  The run-length kernels made the serial baseline
#: ~4x faster than the old loop extractors, so the parallel win over
#: worker spawn is thinner than it was — the floor defends "the
#: process path still parallelizes", not the old headline ratio.
PROCESS_OVER_SERIAL_FLOOR = 1.2


def grow_shard_dir(trace: Trace, rounds: int, root: Path) -> Path:
    """Stream ``trace`` into ``root`` as ``rounds`` committed rounds."""
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    with RtrcDirAppender(root, trace.metadata) as appender:
        for lo, hi in zip(edges[:-1], edges[1:]):
            for index in range(int(lo), int(hi)):
                a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
                appender.append_snapshot(
                    float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
                )
            appender.commit()
    return root


def measure(trace: Trace, root: Path) -> dict[str, float]:
    """Wall time of a late follower's contacts analysis per backend."""
    results: dict[str, float] = {}
    expected = None
    for backend in ("serial", "process"):
        with LiveAnalyzer(root, backend=backend) as live:
            t0 = time.perf_counter()
            contacts = live.contacts(RADIUS)
            results[f"{backend}_s"] = time.perf_counter() - t0
        if expected is None:
            expected = contacts
            results["contacts"] = len(contacts)
        else:
            assert contacts == expected, f"{backend} diverged from serial"
    results["process_over_serial"] = results["serial_s"] / results["process_s"]
    return results


# -- pytest harness (correctness smoke at reduced scale) -------------------


def test_backends_agree_on_shard_dir(tmp_path):
    trace = walk_trace(40, 150)  # 6k observations
    root = grow_shard_dir(trace, 4, tmp_path / "shards")
    row = measure(trace, root)
    assert row["contacts"] > 0, "degenerate workload: no contacts"


def test_follower_matches_oracle_across_rounds(tmp_path):
    trace = walk_trace(24, 80)
    root = grow_shard_dir(trace, 3, tmp_path / "shards")
    with LiveAnalyzer(root, backend="process") as live:
        assert live.part_count == 3
        assert live.contacts(RADIUS) == extract_contacts(trace, RADIUS)


# -- full table ------------------------------------------------------------


def main() -> int:
    cores = usable_cores()
    obs = FULL_SNAPSHOTS * FULL_USERS
    print(
        f"live shard-dir backends: catch-up contacts workload, {obs} "
        f"observations, r={RADIUS:g} m, {ROUNDS} committed rounds, "
        f"{cores} usable core(s)"
    )
    trace = walk_trace(FULL_SNAPSHOTS, FULL_USERS)
    with tempfile.TemporaryDirectory() as tmp:
        root = grow_shard_dir(trace, ROUNDS, Path(tmp) / "shards")
        row = measure(trace, root)
    print(f"{'backend':>10} {'wall':>9} {'vs serial':>10}")
    print(f"{'serial':>10} {row['serial_s']:>8.2f}s {'1.00x':>10}")
    print(
        f"{'process':>10} {row['process_s']:>8.2f}s "
        f"{row['process_over_serial']:>9.2f}x"
    )
    print(
        f"{row['contacts']} contact intervals; process over serial: "
        f"{row['process_over_serial']:.2f}x (floor {PROCESS_OVER_SERIAL_FLOOR}x)"
    )
    if cores < 2:
        print("floor skipped: single usable core, nothing to parallelize")
        return 0
    if row["process_over_serial"] < PROCESS_OVER_SERIAL_FLOOR:
        print(
            f"REGRESSION: process backend only "
            f"{row['process_over_serial']:.2f}x the serial live analyzer "
            f"(floor {PROCESS_OVER_SERIAL_FLOOR}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
