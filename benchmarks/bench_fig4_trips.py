"""Fig. 4 — trip analysis: travel length, effective travel time and
travel (login) time CDFs.

Headline claims: the vast majority of users travel short distances
(90th percentiles ~230/400/500 m for Dance/Apfel/IoV); a small
fraction of Isle of View users travel very far (~2 % above 2000 m);
sessions cap at ~4 h with 90 % under an hour.
"""

from repro.core.report import render_ccdf_table
from repro.core.spatial import travel_lengths, travel_times
from repro.lands import PAPER_TARGETS


class TestFig4aTravelLength:
    def test_fig4a_travel_length(self, benchmark, traces, analyzers, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(lambda: travel_lengths(dance), rounds=3, iterations=1)
        series = {n: a.travel_lengths() for n, a in analyzers.items()}
        with capsys.disabled():
            print("\n[Fig 4(a)] Travel length CDF")
            print(
                render_ccdf_table(
                    series,
                    [10.0, 50.0, 100.0, 230.0, 400.0, 500.0, 1000.0, 2000.0],
                    complementary=False,
                )
            )
        p90 = {n: float(e.quantile(0.9)) for n, e in series.items()}
        # Confined club < open spaces, as in the paper.
        assert p90["Dance Island"] < p90["Apfel Land"]
        assert p90["Dance Island"] < p90["Isle of View"]
        # Within a factor ~2.5 of the paper's 24 h percentiles.
        for name, targets in PAPER_TARGETS.items():
            assert targets.travel_p90 / 2.5 <= p90[name] <= targets.travel_p90 * 2.5, name

    def test_fig4a_iov_long_trip_tail(self, analyzers, capsys):
        lengths = analyzers["Isle of View"].travel_lengths()
        tail = lengths.survival_at(2000.0)
        with capsys.disabled():
            print(f"\n[Fig 4(a)] IoV trips > 2000 m: {tail:.2%} (paper: ~2%)")
        assert 0.0 < tail < 0.10
        # The other lands have (nearly) no such travellers.
        assert analyzers["Dance Island"].travel_lengths().survival_at(2000.0) < tail


class TestFig4bEffectiveTravelTime:
    def test_fig4b_effective_travel_time(self, benchmark, analyzers, capsys):
        benchmark.pedantic(
            lambda: analyzers["Dance Island"].effective_travel_times(),
            rounds=3,
            iterations=1,
        )
        series = {n: a.effective_travel_times() for n, a in analyzers.items()}
        with capsys.disabled():
            print("\n[Fig 4(b)] Effective travel time CDF")
            print(
                render_ccdf_table(
                    series,
                    [10.0, 60.0, 300.0, 900.0, 1800.0, 3600.0],
                    complementary=False,
                )
            )
        # Moving time is a small share of connected time: users spend
        # most of a session dwelling at points of interest.
        for name, analyzer in analyzers.items():
            moving = analyzer.effective_travel_times().median
            connected = analyzer.travel_times().median
            assert moving < 0.5 * connected, name


class TestFig4cTravelTime:
    def test_fig4c_travel_time(self, benchmark, traces, analyzers, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(lambda: travel_times(dance), rounds=3, iterations=1)
        series = {n: a.travel_times() for n, a in analyzers.items()}
        with capsys.disabled():
            print("\n[Fig 4(c)] Travel (login) time CDF")
            print(
                render_ccdf_table(
                    series,
                    [60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0],
                    complementary=False,
                )
            )
        for name, ecdf in series.items():
            # Hard cap ~4 h (plus sampling slack).
            assert ecdf.max <= 4.0 * 3600.0 + 60.0, name
        # Event visitors linger: IoV sessions are the longest.
        assert series["Isle of View"].median > series["Dance Island"].median
