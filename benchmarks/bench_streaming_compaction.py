"""Streaming compaction: bounded peak memory at materializing speed.

The lifecycle claim of PR 9 is measured: folding a directory of
append-round shard files with the streaming compactor
(``compact_shard_dir(..., batch_snapshots=K)``) must hold only O(batch)
rows at once, where the materializing oracle (``batch_snapshots=None``)
loads the whole directory before writing anything — while producing
byte-identical output.  Peaks are measured with :mod:`tracemalloc`
(numpy allocations; memmapped pages do not count, which is the point —
the streaming path reads through memmaps and copies one batch at a
time).

Runs two ways:

* ``pytest benchmarks/bench_streaming_compaction.py -s`` — the
  assertion harness at reduced scale with conservative floors;
* ``PYTHONPATH=src python benchmarks/bench_streaming_compaction.py`` —
  the full table at 4M observations.
"""

from __future__ import annotations

import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.trace import RtrcDirAppender, Trace, compact_shard_dir, read_shard_manifest
from repro.trace.columnar import ColumnarStore, UserInterner

#: Full-run workload: 2000 snapshots x 2000 users = 4M observations.
FULL_SNAPSHOTS, FULL_USERS = 2000, 2000

#: Round files the crawl is split into, and the streaming batch size.
ROUNDS = 16
BATCH_SNAPSHOTS = 64

#: Floors for the pytest harness.  The dev container measures ~14x
#: peak reduction at 1600x50 and more at full scale (the streaming
#: peak is O(batch) while the materialized peak grows with the
#: directory); 4x only catches the streaming path silently
#: materializing again.  The slowdown ceiling guards the flip side:
#: bounded memory must not cost an order of magnitude of wall time.
PEAK_RATIO_FLOOR = 4.0
SLOWDOWN_CEILING = 5.0


def _trace(snapshots: int, users: int) -> Trace:
    rng = np.random.default_rng(snapshots * 17 + users)
    times = np.arange(snapshots, dtype=np.float64) * 10.0
    offsets = np.arange(snapshots + 1, dtype=np.int64) * users
    ids = np.tile(np.arange(users, dtype=np.int64), snapshots)
    xyz = rng.uniform(0.0, 256.0, size=(snapshots * users, 3))
    store = ColumnarStore(
        times, offsets, ids, xyz, UserInterner(f"u{i:05d}" for i in range(users))
    )
    return Trace.from_columns(store)


def build_round_dir(trace: Trace, rounds: int, root: Path) -> Path:
    """Persist ``trace`` as ``rounds`` committed append-round files."""
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    with RtrcDirAppender(root, trace.metadata) as appender:
        for lo, hi in zip(edges[:-1], edges[1:]):
            for index in range(int(lo), int(hi)):
                a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
                appender.append_snapshot(
                    float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
                )
            appender.commit()
    return root


def measure(trace: Trace, tmp: Path, batch: int = BATCH_SNAPSHOTS) -> dict[str, float]:
    """Peak bytes and seconds for both compaction strategies."""
    streamed = build_round_dir(trace, ROUNDS, tmp / "streamed")
    tracemalloc.start()
    t0 = time.perf_counter()
    compact_shard_dir(streamed, 2, batch_snapshots=batch)
    t_stream = time.perf_counter() - t0
    _, peak_stream = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    materialized = build_round_dir(trace, ROUNDS, tmp / "materialized")
    tracemalloc.start()
    t0 = time.perf_counter()
    compact_shard_dir(materialized, 2, batch_snapshots=None)
    t_materialize = time.perf_counter() - t0
    _, peak_materialize = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    manifest = read_shard_manifest(streamed)
    assert manifest == read_shard_manifest(materialized), "manifests diverged"
    for name in manifest["files"]:
        identical = (streamed / name).read_bytes() == (
            materialized / name
        ).read_bytes()
        assert identical, f"{name}: streaming output diverged from the oracle"

    return {
        "streaming_peak_b": float(peak_stream),
        "materialized_peak_b": float(peak_materialize),
        "peak_ratio": peak_materialize / peak_stream,
        "streaming_s": t_stream,
        "materialized_s": t_materialize,
        "slowdown": t_stream / t_materialize,
    }


def test_streaming_peak_is_bounded(tmp_path):
    trace = _trace(1600, 50)  # 80k observations, ~2.6 MiB payload
    row = measure(trace, tmp_path)
    assert row["peak_ratio"] >= PEAK_RATIO_FLOOR, (
        f"streaming compaction peak only {row['peak_ratio']:.1f}x under the "
        f"materializing peak (floor: {PEAK_RATIO_FLOOR:.1f}x)"
    )


def test_streaming_is_not_pathologically_slow(tmp_path):
    trace = _trace(1600, 50)
    row = measure(trace, tmp_path)
    assert row["slowdown"] <= SLOWDOWN_CEILING, (
        f"streaming compaction {row['slowdown']:.1f}x slower than "
        f"materializing (ceiling: {SLOWDOWN_CEILING:.1f}x)"
    )


def main() -> None:
    import tempfile

    trace = _trace(FULL_SNAPSHOTS, FULL_USERS)
    rows = trace.columns.observation_count
    print(
        f"streaming compaction at {rows} observations, {ROUNDS} rounds, "
        f"batch={BATCH_SNAPSHOTS} snapshots"
    )
    with tempfile.TemporaryDirectory() as tmp:
        row = measure(trace, Path(tmp))
    print(
        f"peak rss  : streaming {row['streaming_peak_b'] / 2**20:8.1f} MiB   "
        f"materializing {row['materialized_peak_b'] / 2**20:8.1f} MiB   "
        f"= {row['peak_ratio']:.1f}x smaller"
    )
    print(
        f"wall time : streaming {row['streaming_s']:8.3f}s   "
        f"materializing {row['materialized_s']:8.3f}s   "
        f"= {row['slowdown']:.2f}x"
    )


if __name__ == "__main__":
    main()
