"""Fig. 3 — zone occupation: users per 20 m cell, empty cells included.

Headline claims: 'a large fraction of the land has no users' (the CDF
starts around or above 0.8 at zero) and 'some lands (e.g. Dance
Island) are characterized by hot-spots with several tens of users'.
"""

from repro.core.report import render_ccdf_table
from repro.core.spatial import hotspot_cells, zone_occupation


def test_fig3_zone_occupation(benchmark, traces, analyzers, config, capsys):
    dance = traces["Dance Island"]
    benchmark.pedantic(
        lambda: zone_occupation(dance, 20.0, config.every), rounds=2, iterations=1
    )
    series = {
        n: a.zone_occupation(20.0, config.every) for n, a in analyzers.items()
    }
    with capsys.disabled():
        print("\n[Fig 3] Zone occupation (users per 20m cell) CDF")
        print(
            render_ccdf_table(
                series,
                [0.0, 1.0, 2.0, 5.0, 10.0, 15.0, 25.0],
                complementary=False,
            )
        )
    for name, ecdf in series.items():
        assert float(ecdf.cdf(0.0)) >= 0.8, name


def test_fig3_dance_hotspots(traces, analyzers, config, capsys):
    occupancy = analyzers["Dance Island"].zone_occupation(20.0, config.every)
    hot = hotspot_cells(traces["Dance Island"], 20.0, threshold=10, every=config.every)
    with capsys.disabled():
        print(
            f"\n[Fig 3] Dance Island: max cell occupancy {occupancy.max:.0f} users, "
            f"cells with >=10 users: {hot:.2%}"
        )
    assert occupancy.max >= 10.0
    assert hot > 0.0


def test_fig3_apfel_sparser_than_dance(analyzers, config):
    apfel = analyzers["Apfel Land"].zone_occupation(20.0, config.every)
    dance = analyzers["Dance Island"].zone_occupation(20.0, config.every)
    assert apfel.max < dance.max
