"""A1 — sampling-period ablation: how τ biases the temporal metrics.

The same underlying motion is observed at τ ∈ {10, 30, 60, 120} s by
resampling one Dance Island trace.  Coarser sampling misses short
contacts (contact count drops) and can only report durations at its
own resolution.
"""

from repro.core.report import render_summary_table
from repro.experiments import ablation_tau


def test_ablation_tau_bias(benchmark, config, capsys):
    rows = benchmark.pedantic(
        lambda: ablation_tau(config, factors=(1, 3, 6, 12)), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n[A1] Sampling-period ablation (Dance Island, r=10m)")
        print(render_summary_table(rows))
    taus = [row["tau_s"] for row in rows]
    counts = [row["contacts"] for row in rows]
    assert taus == sorted(taus)
    # Strictly fewer observed contacts at every coarser period.
    assert all(b < a for a, b in zip(counts, counts[1:]))
    # Reported CT medians cannot fall below the sampling resolution.
    for row in rows:
        assert row["ct_median_s"] >= row["tau_s"]


def test_resampling_preserves_population(traces):
    base = traces["Dance Island"]
    coarse = base.resampled(6)
    assert coarse.unique_users() <= base.unique_users()
    # Nearly every user still appears at 60 s sampling.
    assert len(coarse.unique_users()) > 0.9 * len(base.unique_users())
