"""A2 — crawler-perturbation ablation (§2 methodology).

A naive crawler (silent, motionless) measurably drags users toward its
anchor; the mimicking crawler (random movement + canned chat) leaves
the world unperturbed.  This regenerates the authors' observation that
made them design the mimicry in the first place.
"""

from repro.core.report import render_summary_table
from repro.experiments import ablation_crawler_perturbation


def test_ablation_crawler_perturbation(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: ablation_crawler_perturbation(duration=3600.0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n[A2] Crawler perturbation (naive vs mimicking)")
        print(render_summary_table(rows))
    by_kind = {row["crawler"]: row for row in rows}
    assert by_kind["naive"]["redirects"] > 0
    assert by_kind["mimic"]["redirects"] == 0
    # 'A steady convergence of user movements towards our crawler':
    # users end up closer to the naive crawler's anchor.
    assert (
        by_kind["naive"]["mean_dist_to_center_m"]
        < by_kind["mimic"]["mean_dist_to_center_m"]
    )
