"""Fig. 2 — line-of-sight network properties: node degree CCDF,
largest-component diameter CDF, clustering-coefficient CDF, at both
communication ranges.

Headline claims reproduced: the isolated-user mass ordering (Apfel ~60%,
Dance ~10%, IoV ~0% at r=10 m; ~0 everywhere at r=80 m), diameter
shrinking with range on dense lands (and the Apfel small-components
paradox), and high clustering.
"""

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE
from repro.core.losgraph import clustering_series, degree_samples, diameter_series
from repro.core.report import render_ccdf_table


def _print_panel(capsys, title, series, grid, complementary):
    with capsys.disabled():
        kind = "CCDF" if complementary else "CDF"
        print(f"\n[{title}] {kind}")
        print(render_ccdf_table(series, grid, complementary=complementary))


class TestFig2aDegreeRb:
    def test_fig2a_degree_rb(self, benchmark, traces, analyzers, config, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: degree_samples(dance, BLUETOOTH_RANGE, config.every),
            rounds=2,
            iterations=1,
        )
        series = {n: a.degrees(BLUETOOTH_RANGE, config.every) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 2(a) degree r=10m", series,
                     [0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0], complementary=True)
        iso = {
            n: a.isolation_fraction(BLUETOOTH_RANGE, config.every)
            for n, a in analyzers.items()
        }
        assert iso["Apfel Land"] > 0.4
        assert iso["Dance Island"] < 0.25
        assert iso["Isle of View"] < 0.25
        assert iso["Apfel Land"] > iso["Dance Island"] > 0.0


class TestFig2bDiameterRb:
    def test_fig2b_diameter_rb(self, benchmark, traces, analyzers, config, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: diameter_series(dance, BLUETOOTH_RANGE, config.every),
            rounds=2,
            iterations=1,
        )
        series = {n: a.diameters(BLUETOOTH_RANGE, config.every) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 2(b) diameter r=10m", series,
                     [0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0], complementary=False)
        for name, ecdf in series.items():
            assert ecdf.max <= 20, name


class TestFig2cClusteringRb:
    def test_fig2c_clustering_rb(self, benchmark, traces, analyzers, config, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: clustering_series(dance, BLUETOOTH_RANGE, config.every),
            rounds=2,
            iterations=1,
        )
        series = {
            n: a.clustering(BLUETOOTH_RANGE, config.every) for n, a in analyzers.items()
        }
        _print_panel(capsys, "Fig 2(c) clustering r=10m", series,
                     [0.0, 0.2, 0.4, 0.6, 0.8, 0.95], complementary=False)
        # 'Our results clearly point to high median values.'
        assert series["Dance Island"].median > 0.5
        assert series["Isle of View"].median > 0.5


class TestFig2dDegreeRw:
    def test_fig2d_degree_rw(self, benchmark, traces, analyzers, config, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: degree_samples(dance, WIFI_RANGE, config.every),
            rounds=2,
            iterations=1,
        )
        series = {n: a.degrees(WIFI_RANGE, config.every) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 2(d) degree r=80m", series,
                     [0.0, 1.0, 5.0, 10.0, 20.0, 40.0, 80.0], complementary=True)
        # 'When r = rw all users have at least one neighbor in all lands.'
        for name, analyzer in analyzers.items():
            assert analyzer.isolation_fraction(WIFI_RANGE, config.every) < 0.12, name
        # Degrees grow with the range.
        for name, analyzer in analyzers.items():
            assert (
                analyzer.degrees(WIFI_RANGE, config.every).median
                >= analyzer.degrees(BLUETOOTH_RANGE, config.every).median
            ), name


class TestFig2eDiameterRw:
    def test_fig2e_diameter_rw(self, benchmark, traces, analyzers, config, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: diameter_series(dance, WIFI_RANGE, config.every),
            rounds=2,
            iterations=1,
        )
        series = {n: a.diameters(WIFI_RANGE, config.every) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 2(e) diameter r=80m", series,
                     [0.0, 1.0, 2.0, 3.0, 5.0], complementary=False)
        # Dense lands: the diameter support shrinks when the range
        # grows (the paper's 'it is clear that the diameter shrinks
        # for r = rw').  Medians can cross on Dance Island, whose
        # r=10 m largest component is the dance-floor clique — the
        # same small-components effect the paper reports for Apfel.
        for name in ("Dance Island", "Isle of View"):
            d_b = analyzers[name].diameters(BLUETOOTH_RANGE, config.every)
            d_w = analyzers[name].diameters(WIFI_RANGE, config.every)
            assert d_w.max <= d_b.max, name

    def test_apfel_diameter_paradox(self, analyzers, config, capsys):
        """Fig. 2(b)/(e): Apfel's r=10 max diameter is *smaller* than
        at r=80 — small range fragments the sparse land into tiny
        components, and the LCC of fragments has a short diameter."""
        d_b = analyzers["Apfel Land"].diameters(BLUETOOTH_RANGE, config.every)
        d_w = analyzers["Apfel Land"].diameters(WIFI_RANGE, config.every)
        with capsys.disabled():
            print(
                f"\n[Fig 2 Apfel paradox] max diameter r=10m: {d_b.max:.0f}, "
                f"r=80m: {d_w.max:.0f}"
            )
        assert d_b.max <= d_w.max


class TestFig2fClusteringRw:
    def test_fig2f_clustering_rw(self, benchmark, traces, analyzers, config, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: clustering_series(dance, WIFI_RANGE, config.every),
            rounds=2,
            iterations=1,
        )
        series = {n: a.clustering(WIFI_RANGE, config.every) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 2(f) clustering r=80m", series,
                     [0.0, 0.2, 0.4, 0.6, 0.8, 0.95], complementary=False)
        for name, ecdf in series.items():
            assert ecdf.median > 0.5, name
