"""A3 — monitoring-architecture ablation (§2).

Ground truth, crawler and sensor network observe the *same* world
realization; the rows quantify what each architecture captured.  The
crawler matches ground truth at its own sampling period; the sensor
network loses observations to the 16-avatar cap, the 16 KB cache and
the HTTP budget — the measurable version of why the paper abandoned
it.
"""

from repro.core.report import render_summary_table
from repro.experiments import ablation_monitor_fidelity


def test_ablation_monitor_fidelity(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: ablation_monitor_fidelity(duration=3600.0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n[A3] Monitor fidelity vs ground truth (Dance Island)")
        print(render_summary_table(rows))
    by_monitor = {row["monitor"]: row for row in rows}
    # The crawler sees the entire population.
    assert by_monitor["crawler"]["user_coverage"] >= 0.99
    assert by_monitor["crawler"]["record_coverage"] >= 0.99
    # The sensor network captures less than the crawler does.
    assert (
        by_monitor["sensor-network"]["record_coverage"]
        <= by_monitor["crawler"]["record_coverage"]
    )
