"""A6 — communication-range sweep: the paper's central parameter.

The whole evaluation contrasts r_b = 10 m and r_w = 80 m; this
ablation fills in the curve between (and below) them on one land,
verifying the monotone effects (contact time and degree grow with r,
isolation falls) and exposing the non-monotone one: the LCC diameter
first *grows* with r (fragments merge into long chains) before the
graph densifies toward a clique — the mechanism behind the paper's
Apfel 'contradiction'.
"""

from repro.core.report import render_summary_table
from repro.experiments.ablations import ablation_range_sweep

RANGES = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0)


def _sweep(analyzer, every: int) -> list[dict[str, object]]:
    # The per-radius contact loop lives in ablation_range_sweep now,
    # batched over one grid build per snapshot (extract_contacts_multirange).
    return ablation_range_sweep(analyzer, RANGES, every)


def test_ablation_range_sweep_sparse_land(benchmark, analyzers, config, capsys):
    """Apfel Land: the fragment-merging regime the paper observed."""
    analyzer = analyzers["Apfel Land"]
    rows = benchmark.pedantic(
        lambda: _sweep(analyzer, config.every), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n[A6] Communication-range sweep (Apfel Land)")
        print(render_summary_table(rows))

    ct = [row["ct_median_s"] for row in rows]
    degree = [row["median_degree"] for row in rows]
    isolated = [row["isolated"] for row in rows]
    # Monotone effects of a larger range.
    assert all(b >= a for a, b in zip(ct, ct[1:]))
    assert all(b >= a for a, b in zip(degree, degree[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(isolated, isolated[1:]))
    # The diameter is NOT monotone in r: small ranges fragment the
    # sparse land into tiny components (short LCC paths), mid ranges
    # merge fragments into long chains, very large ranges clique-ify —
    # the paper's Apfel 'contradiction', generalized to a full sweep.
    diameters = [row["max_diameter"] for row in rows]
    assert max(diameters) > diameters[0], "fragment merging should stretch the LCC"
    assert max(diameters) > diameters[-1], "clique-ification should shrink it again"


def test_range_sweep_dense_land_monotone_shrink(analyzers, config, capsys):
    """Isle of View: dense enough that the LCC spans the crowd even at
    5 m, so the diameter only shrinks as the range grows."""
    analyzer = analyzers["Isle of View"]
    rows = _sweep(analyzer, config.every)
    with capsys.disabled():
        print("\n[A6] Communication-range sweep (Isle of View)")
        print(render_summary_table(rows))
    diameters = [row["max_diameter"] for row in rows]
    assert all(b <= a for a, b in zip(diameters, diameters[1:]))
