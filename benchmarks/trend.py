"""Benchmark-trend tier: cheap, machine-readable, regression-gated.

Runs a reduced-scale slice of the benchmark suite on every CI push,
writes one ``BENCH_<name>.json`` per benchmark (wall times plus the
speedup ratios the repo's performance claims rest on), and fails when
a ratio drops past a configurable floor below the committed baseline
(``benchmarks/baselines.json``).  Ratios — not absolute times — are
gated, so the gate is robust across runner generations; the floor
absorbs scheduler noise on shared runners.

Usage::

    PYTHONPATH=src python benchmarks/trend.py                # run + gate
    PYTHONPATH=src python benchmarks/trend.py --out-dir out  # artifacts
    PYTHONPATH=src python benchmarks/trend.py --floor-ratio 0.4
    PYTHONPATH=src python benchmarks/trend.py --only append_ingest
    PYTHONPATH=src python benchmarks/trend.py --list

``--floor-ratio`` (or the ``BENCH_FLOOR_RATIO`` environment variable)
scales every baseline: a measured ratio below ``baseline *
floor_ratio`` is a regression.  Benchmarks that need parallelism
auto-skip below 2 usable cores and record the skip in their JSON.
The update workflow for ``baselines.json`` is documented in
``benchmarks/README.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

BASELINES_PATH = Path(__file__).with_name("baselines.json")


# -- the cheap benchmark tier ----------------------------------------------


def bench_contacts_grid() -> dict:
    """Grid-indexed contact engine vs the dense O(n^2) reference."""
    from repro.core.contacts import (
        BLUETOOTH_RANGE,
        extract_contacts,
        extract_contacts_reference,
    )
    from repro.trace import random_walk_trace

    trace = random_walk_trace(200, 40, np.random.default_rng(200))
    extract_contacts(trace, BLUETOOTH_RANGE)  # warm allocator/caches
    t0 = time.perf_counter()
    grid = extract_contacts(trace, BLUETOOTH_RANGE)
    t_grid = time.perf_counter() - t0
    t0 = time.perf_counter()
    dense = extract_contacts_reference(trace, BLUETOOTH_RANGE)
    t_dense = time.perf_counter() - t0
    assert grid == dense, "grid and dense extractors disagree"
    return {
        "metrics": {"grid_over_dense": t_dense / t_grid},
        "timings": {"grid_s": t_grid, "dense_s": t_dense},
    }


def bench_extraction_kernels() -> dict:
    """Vectorized run-length kernels vs the per-snapshot loop extractors."""
    from bench_extraction_kernels import measure
    from bench_parallel_backends import walk_trace

    row = measure(walk_trace(120, 300), sweep=(5.0, 10.0, 20.0, 40.0))
    return {
        "metrics": {
            "kernel_over_loop": row["kernel_over_loop"],
            "sweep_kernel_over_loop": row["sweep_kernel_over_loop"],
        },
        "timings": {
            "loop_contacts_s": row["loop_contacts_s"],
            "kernel_contacts_s": row["kernel_contacts_s"],
            "loop_sessions_s": row["loop_sessions_s"],
            "kernel_sessions_s": row["kernel_sessions_s"],
            "loop_sweep_s": row["loop_sweep_s"],
            "kernel_sweep_s": row["kernel_sweep_s"],
        },
    }


def bench_multirange() -> dict:
    """Batched radius sweep vs N sequential extractions (hot-spot)."""
    from bench_multirange import WORKLOADS, _measure

    row = _measure(dict(WORKLOADS[0][1]))
    return {
        "metrics": {"batched_over_sequential": row["speedup"]},
        "timings": {
            "sequential_s": row["sequential_s"],
            "multirange_s": row["multirange_s"],
        },
    }


def bench_append_ingest() -> dict:
    """Streaming appends vs per-round rewrites; live vs full analysis."""
    from bench_append_ingest import _trace, measure_analysis, measure_append

    with tempfile.TemporaryDirectory() as tmp:
        append = measure_append(_trace(240, 400), 24, Path(tmp))
    with tempfile.TemporaryDirectory() as tmp:
        analysis = measure_analysis(_trace(120, 300), 8, Path(tmp))
    return {
        "metrics": {
            "append_over_rewrite": append["speedup"],
            "live_over_full": analysis["speedup"],
        },
        "timings": {
            "append_s": append["append_s"],
            "rewrite_s": append["rewrite_s"],
            "live_s": analysis["live_s"],
            "full_s": analysis["full_s"],
        },
    }


def bench_streaming_compaction() -> dict:
    """Bounded-memory streaming compaction vs the materializing oracle."""
    from bench_streaming_compaction import _trace, measure

    with tempfile.TemporaryDirectory() as tmp:
        row = measure(_trace(1600, 50), Path(tmp))
    return {
        "metrics": {"materialized_over_streaming_peak": row["peak_ratio"]},
        "timings": {
            "streaming_s": row["streaming_s"],
            "materialized_s": row["materialized_s"],
            "streaming_peak_b": row["streaming_peak_b"],
            "materialized_peak_b": row["materialized_peak_b"],
        },
    }


def bench_live_shard_dir() -> dict:
    """Parallel live shard-dir catch-up vs the serial live analyzer."""
    from bench_live_shard_dir import grow_shard_dir, measure
    from bench_parallel_backends import usable_cores, walk_trace

    cores = usable_cores()
    if cores < 2:
        return {"skipped": True, "reason": f"{cores} usable core(s)"}
    trace = walk_trace(240, 800)  # 192k observations
    with tempfile.TemporaryDirectory() as tmp:
        root = grow_shard_dir(trace, 8, Path(tmp) / "shards")
        row = measure(trace, root)
    return {
        "metrics": {"process_over_serial": row["process_over_serial"]},
        "timings": {"serial_s": row["serial_s"], "process_s": row["process_s"]},
    }


def bench_network_backend() -> dict:
    """Distributed loopback-worker contacts vs the serial extraction."""
    from bench_network_backend import measure
    from bench_parallel_backends import usable_cores, walk_trace

    cores = usable_cores()
    if cores < 2:
        return {"skipped": True, "reason": f"{cores} usable core(s)"}
    trace = walk_trace(240, 800)  # 192k observations
    row = measure(trace)
    return {
        "metrics": {"network_over_serial": row["network_over_serial"]},
        "timings": {
            "serial_s": row["serial_s"],
            "network_s": row["network_s"],
            "workers": row["workers"],
        },
    }


def bench_load_generator() -> dict:
    """Metaverse hotspot generator vs the random-walk generator.

    Both builders are fully vectorized; the hotspot generator adds the
    Zipf venue assignment, hop re-draws and the OU pull per step.  The
    gated ratio defends that this structure stays a small constant
    factor over the null random walk at equal observation counts — if
    it collapses, the load generator can no longer stand in for
    million-avatar workloads.
    """
    from repro.trace import metaverse_trace, random_walk_trace

    users, steps = 2000, 120  # 240k observations each
    metaverse_trace(200, 20, np.random.default_rng(0))  # warm imports
    t0 = time.perf_counter()
    random_walk_trace(users, steps, np.random.default_rng(7))
    t_walk = time.perf_counter() - t0
    t0 = time.perf_counter()
    metaverse_trace(users, steps, np.random.default_rng(7), size=1024.0)
    t_meta = time.perf_counter() - t0
    obs = users * steps
    return {
        "metrics": {"metaverse_over_walk": t_walk / t_meta},
        "timings": {
            "walk_s": t_walk,
            "metaverse_s": t_meta,
            "metaverse_obs_per_s": obs / t_meta,
        },
    }


def bench_query_service() -> dict:
    """Cached query-service throughput vs uncached response recompute."""
    from bench_parallel_backends import walk_trace
    from bench_query_service import build_store, measure

    trace = walk_trace(60, 300)  # 18k observations
    with tempfile.TemporaryDirectory() as tmp:
        root = build_store(trace, 4, Path(tmp) / "store")
        row = measure(root, clients=3, queries_per_client=40)
    return {
        "metrics": {"cached_over_uncached": row["cached_over_uncached"]},
        "timings": {
            "cached_s": row["cached_s"],
            "uncached_s": row["uncached_s"],
            "with_append_s": row["with_append_s"],
        },
    }


BENCHES = {
    "contacts_grid": bench_contacts_grid,
    "extraction_kernels": bench_extraction_kernels,
    "multirange": bench_multirange,
    "append_ingest": bench_append_ingest,
    "streaming_compaction": bench_streaming_compaction,
    "live_shard_dir": bench_live_shard_dir,
    "network_backend": bench_network_backend,
    "query_service": bench_query_service,
    "load_generator": bench_load_generator,
}


# -- the gate ---------------------------------------------------------------


def run_trend(
    out_dir: Path,
    floor_ratio: float,
    only: list[str] | None = None,
) -> int:
    """Run the tier, write ``BENCH_*.json``, gate against baselines."""
    baselines = json.loads(BASELINES_PATH.read_text(encoding="utf-8"))
    baseline_metrics: dict[str, float] = baselines["metrics"]
    out_dir.mkdir(parents=True, exist_ok=True)
    cores = os.cpu_count() or 1
    failures: list[str] = []
    for name, bench in BENCHES.items():
        if only and name not in only:
            continue
        t0 = time.perf_counter()
        result = bench()
        wall = time.perf_counter() - t0
        record = {
            "name": name,
            "cores": cores,
            "wall_s": wall,
            "skipped": bool(result.get("skipped", False)),
            "reason": result.get("reason"),
            "metrics": result.get("metrics", {}),
            "timings": result.get("timings", {}),
            "floor_ratio": floor_ratio,
            "baselines": {},
        }
        if record["skipped"]:
            print(f"[trend] {name}: SKIPPED ({record['reason']})")
        for metric, value in record["metrics"].items():
            key = f"{name}.{metric}"
            baseline = baseline_metrics.get(key)
            record["baselines"][metric] = baseline
            if baseline is None:
                print(f"[trend] {key} = {value:.2f}x (no baseline, not gated)")
                continue
            floor = baseline * floor_ratio
            status = "ok" if value >= floor else "REGRESSION"
            print(
                f"[trend] {key} = {value:.2f}x "
                f"(baseline {baseline:.2f}x, floor {floor:.2f}x) {status}"
            )
            if value < floor:
                failures.append(
                    f"{key}: {value:.2f}x under floor {floor:.2f}x "
                    f"(baseline {baseline:.2f}x * ratio {floor_ratio})"
                )
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"[trend] wrote {path}")
    if failures:
        print("\nbenchmark-trend regressions:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=".",
                        help="where BENCH_<name>.json artifacts go")
    parser.add_argument("--floor-ratio", type=float,
                        default=float(os.environ.get("BENCH_FLOOR_RATIO", 0.5)),
                        help="fail when a metric drops below baseline * "
                             "this ratio (default 0.5, or BENCH_FLOOR_RATIO)")
    parser.add_argument("--only", action="append",
                        help="run only this benchmark (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list benchmark names and exit")
    args = parser.parse_args(argv)
    if args.list:
        for name in BENCHES:
            print(name)
        return 0
    return run_trend(Path(args.out_dir), args.floor_ratio, args.only)


if __name__ == "__main__":
    sys.exit(main())
