"""Cached query-service throughput vs uncached response recompute.

The query service answers repeated analytics queries from a
per-``(kind, params)`` cache of encoded responses, invalidated by the
store's commit generation — so between commits, a dashboard polling
``/contacts?r=10`` costs one dictionary hit and a socket write instead
of rebuilding and re-encoding the JSON document every time.  This
benchmark measures that claim under concurrency: N keep-alive HTTP
clients hammer the same endpoints against (a) the caching service and
(b) a service with response caching disabled (every request rebuilds
the payload from the follower's merged results and re-encodes it —
the "uncached recompute" an un-cached web app would do per hit).

A third pass re-runs the cached drill while a live producer POSTs
crawl rounds through the ingest endpoint, measuring how much commit
churn (which genuinely invalidates the cache) costs the readers.

Runs two ways:

* ``pytest benchmarks/bench_query_service.py -s`` — the assertion
  harness (cached and uncached responses are byte-identical, at
  reduced scale);
* ``PYTHONPATH=src python benchmarks/bench_query_service.py`` — the
  full table; **fails** (exit 1) when the cached path stops beating
  the uncached recompute by :data:`CACHED_OVER_UNCACHED_FLOOR`.
"""

from __future__ import annotations

import http.client
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from bench_live_shard_dir import grow_shard_dir
from bench_parallel_backends import metaverse_load, walk_trace
from repro.service import QueryService
from repro.trace import Trace

#: Full-run workload: 120 snapshots x 600 users = 72k observations.
FULL_SNAPSHOTS, FULL_USERS = 120, 600

#: Crawl rounds the store is committed in before serving.
ROUNDS = 6

#: Concurrent keep-alive query clients.
CLIENTS = 4

#: Queries per client per drill.
QUERIES_PER_CLIENT = 80

#: The endpoints every client cycles through (relative to the store).
ENDPOINTS = ("/contacts?r=10", "/sessions", "/zones?cell=20&every=4")

#: CI regression floor: cached-over-uncached throughput ratio.  The
#: acceptance bar is 5x; the committed baseline is measured higher and
#: the trend gate allows the usual floor-ratio slack below it.
CACHED_OVER_UNCACHED_FLOOR = 5.0


def build_store(trace: Trace, rounds: int, root: Path) -> Path:
    """Commit ``trace`` into ``root`` as a served shard directory."""
    return grow_shard_dir(trace, rounds, root)


def _drill(
    host: str,
    port: int,
    clients: int,
    queries_per_client: int,
    stop_append: threading.Event | None = None,
) -> tuple[float, bytes]:
    """Hammer the endpoints from ``clients`` keep-alive connections.

    Returns ``(wall seconds, one response body)`` for the equivalence
    checks.  Every request must come back 200.
    """
    errors: list[str] = []
    sample: list[bytes] = []

    def client(index: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            for n in range(queries_per_client):
                path = f"/v1/crawl{ENDPOINTS[(index + n) % len(ENDPOINTS)]}"
                connection.request("GET", path)
                response = connection.getresponse()
                body = response.read()
                if response.status != 200:
                    errors.append(f"{path} -> {response.status}")
                    return
                if not sample and path.endswith(ENDPOINTS[0]):
                    sample.append(body)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    if stop_append is not None:
        stop_append.set()
    assert not errors, f"query drill failed: {errors[:3]}"
    return wall, sample[0]


def _appender(host: str, port: int, start_time: float, stop: threading.Event) -> None:
    """POST small crawl rounds until told to stop (the churn source)."""
    connection = http.client.HTTPConnection(host, port, timeout=60)
    t = start_time
    try:
        while not stop.is_set():
            t += 10.0
            body = json.dumps(
                {
                    "snapshots": [
                        {"t": t, "users": ["w1", "w2"], "xyz": [[1, 2, 0], [3, 4, 0]]}
                    ]
                }
            )
            connection.request(
                "POST",
                "/v1/crawl/rounds",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 200, f"ingest -> {response.status}"
            time.sleep(0.01)
    finally:
        connection.close()


def measure(
    root: Path,
    clients: int = CLIENTS,
    queries_per_client: int = QUERIES_PER_CLIENT,
    with_append: bool = True,
) -> dict[str, float]:
    """Cached vs uncached drills (plus the under-ingest drill)."""
    total = clients * queries_per_client
    results: dict[str, float] = {
        "clients": clients,
        "queries": total,
    }
    bodies: dict[str, bytes] = {}
    for mode, cache_results in (("cached", True), ("uncached", False)):
        with QueryService({"crawl": root}, cache_results=cache_results) as service:
            host, port = service.start()
            _drill(host, port, 1, len(ENDPOINTS))  # warm follower + caches
            wall, body = _drill(host, port, clients, queries_per_client)
            results[f"{mode}_s"] = wall
            results[f"{mode}_qps"] = total / wall
            bodies[mode] = body
    assert bodies["cached"] == bodies["uncached"], (
        "caching changed the response bytes"
    )
    results["cached_over_uncached"] = results["cached_qps"] / results["uncached_qps"]
    if with_append:
        with QueryService({"crawl": root}, ingest=True) as service:
            host, port = service.start()
            _drill(host, port, 1, len(ENDPOINTS))
            stop = threading.Event()
            # The producer must append strictly after the committed
            # history; read the store's end from the session list.
            connection = http.client.HTTPConnection(host, port, timeout=60)
            connection.request("GET", "/v1/crawl/sessions")
            sessions = json.loads(connection.getresponse().read())
            connection.close()
            last_time = max(
                (s["logout"] for s in sessions["sessions"]), default=0.0
            )
            writer = threading.Thread(
                target=_appender, args=(host, port, last_time + 1e6, stop)
            )
            writer.start()
            try:
                wall, _ = _drill(host, port, clients, queries_per_client, stop)
            finally:
                stop.set()
                writer.join()
            results["with_append_s"] = wall
            results["with_append_qps"] = total / wall
            results["rounds_ingested"] = service.stats.ingested_rounds
    return results


# -- pytest harness (correctness smoke at reduced scale) -------------------


def test_metaverse_load_drives_service(tmp_path):
    trace = metaverse_load(24, 80)
    root = build_store(trace, 3, tmp_path / "store")
    row = measure(root, clients=2, queries_per_client=6, with_append=False)
    assert row["cached_qps"] > 0 and row["uncached_qps"] > 0


def test_cached_and_uncached_responses_identical(tmp_path):
    trace = walk_trace(24, 60)
    root = build_store(trace, 3, tmp_path / "store")
    row = measure(root, clients=2, queries_per_client=6, with_append=False)
    assert row["cached_qps"] > 0 and row["uncached_qps"] > 0


def test_queries_survive_concurrent_ingest(tmp_path):
    trace = walk_trace(24, 60)
    root = build_store(trace, 3, tmp_path / "store")
    row = measure(root, clients=2, queries_per_client=6, with_append=True)
    assert row["rounds_ingested"] >= 1


# -- full table ------------------------------------------------------------


def main() -> int:
    obs = FULL_SNAPSHOTS * FULL_USERS
    print(
        f"query service: {CLIENTS} keep-alive clients x "
        f"{QUERIES_PER_CLIENT} queries over {ENDPOINTS}, store of "
        f"{obs} observations in {ROUNDS} rounds (metaverse hotspot load)"
    )
    trace = metaverse_load(FULL_SNAPSHOTS, FULL_USERS)
    with tempfile.TemporaryDirectory() as tmp:
        root = build_store(trace, ROUNDS, Path(tmp) / "store")
        row = measure(root)
    print(f"{'mode':>14} {'wall':>9} {'qps':>9}")
    print(f"{'uncached':>14} {row['uncached_s']:>8.2f}s {row['uncached_qps']:>9.0f}")
    print(f"{'cached':>14} {row['cached_s']:>8.2f}s {row['cached_qps']:>9.0f}")
    print(
        f"{'cached+ingest':>14} {row['with_append_s']:>8.2f}s "
        f"{row['with_append_qps']:>9.0f}"
    )
    print(
        f"cached over uncached: {row['cached_over_uncached']:.1f}x "
        f"(floor {CACHED_OVER_UNCACHED_FLOOR}x); "
        f"{row['rounds_ingested']:.0f} rounds ingested during the "
        f"cached+ingest drill"
    )
    if row["cached_over_uncached"] < CACHED_OVER_UNCACHED_FLOOR:
        print(
            f"REGRESSION: cached queries only "
            f"{row['cached_over_uncached']:.1f}x the uncached recompute "
            f"(floor {CACHED_OVER_UNCACHED_FLOOR}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
