"""Engine throughput benchmarks.

Not a paper figure — these keep the substrate honest: world stepping,
crawler sampling and line-of-sight extraction are the hot paths of
every experiment, and a regression here multiplies into hours on the
24 h runs.
"""


from repro.core.contacts import extract_contacts
from repro.core.losgraph import snapshot_graph
from repro.lands import dance_island


def test_world_stepping_throughput(benchmark):
    """Simulated seconds per wall second, steady-state Dance Island."""
    world = dance_island().build(seed=3, start_time=12 * 3600.0)
    world.run_until(12 * 3600.0 + 1200.0)  # warm to steady state

    def step_minute():
        world.run_until(world.now + 60.0)

    benchmark(step_minute)


def test_crawler_sampling_cost(benchmark):
    world = dance_island().build(seed=4, start_time=12 * 3600.0)
    world.run_until(12 * 3600.0 + 1200.0)

    def snapshot():
        return world.snapshot_positions()

    positions = benchmark(snapshot)
    assert len(positions) > 0


def test_contact_extraction_scales(benchmark, traces):
    trace = traces["Isle of View"]  # the densest land

    def extract():
        return extract_contacts(trace, 10.0)

    contacts = benchmark.pedantic(extract, rounds=2, iterations=1)
    assert len(contacts) > 0


def test_snapshot_graph_cost(benchmark, traces):
    snapshot = traces["Isle of View"].snapshots[-1]

    def build():
        return snapshot_graph(snapshot, 80.0)

    graph = benchmark(build)
    assert graph.node_count == len(snapshot)
