"""Shared fixtures for the benchmark harness.

Every benchmark works from the same three cached land traces
(BENCH_CONFIG: a 3 h afternoon window, which covers part of the Isle
of View event).  The simulations run once per pytest session; the
benchmarks then time the *analysis* stages and print the regenerated
figure panels so `pytest benchmarks/ --benchmark-only -s` doubles as a
paper-reproduction report at bench scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import BENCH_CONFIG, analyzer_for, clear_cache
from repro.lands import PAPER_TARGETS

LANDS = tuple(PAPER_TARGETS)


@pytest.fixture(scope="session")
def config():
    """The benchmark-scale experiment configuration."""
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def analyzers(config):
    """One cached TraceAnalyzer per target land."""
    result = {name: analyzer_for(name, config) for name in LANDS}
    yield result


@pytest.fixture(scope="session")
def traces(analyzers):
    """The underlying crawler traces."""
    return {name: analyzer.trace for name, analyzer in analyzers.items()}


def pytest_sessionfinish(session, exitstatus):
    clear_cache()
