"""Fig. 1 — CCDFs of contact time, inter-contact time and first
contact time at Bluetooth (10 m) and WiFi (80 m) range.

Each test regenerates one panel: it times the underlying extraction,
prints the CCDF series on the paper's log grid, and asserts the
panel's headline shape claims (orderings and power-law-with-cutoff
structure), not absolute values.
"""

import pytest

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE
from repro.core.contacts import contact_durations, extract_contacts, inter_contact_times
from repro.core.report import log_grid, render_ccdf_table
from repro.stats import compare_fits


def _print_panel(capsys, title, series, grid=None):
    grid = grid or log_grid(10.0, 1e4, 7)
    with capsys.disabled():
        print(f"\n[{title}] CCDF")
        print(render_ccdf_table(series, grid, complementary=True))


def _assert_power_law_with_cutoff(samples, label):
    """The paper's §4 reading of Fig. 1: 'a first power-law phase and
    an exponential cut-off phase'."""
    fits = compare_fits(
        samples,
        models=("power_law", "exponential", "truncated_power_law"),
    )
    best = fits[0].model
    assert best == "truncated_power_law", (
        f"{label}: expected truncated power law to win, got {best}"
    )


class TestFig1aContactTimeRb:
    def test_fig1a_contact_time_rb(self, benchmark, traces, analyzers, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: extract_contacts(dance, BLUETOOTH_RANGE), rounds=2, iterations=1
        )
        series = {n: a.contact_times(BLUETOOTH_RANGE) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 1(a) CT r=10m", series)
        # Ordering: Apfel shortest contacts, Dance longest.
        assert series["Apfel Land"].median <= series["Isle of View"].median
        assert series["Apfel Land"].median < series["Dance Island"].median
        samples = contact_durations(analyzers["Dance Island"].contacts(BLUETOOTH_RANGE))
        _assert_power_law_with_cutoff(samples, "Dance CT r=10")


class TestFig1bInterContactRb:
    def test_fig1b_intercontact_rb(self, benchmark, traces, analyzers, capsys):
        dance = analyzers["Dance Island"]
        benchmark.pedantic(
            lambda: inter_contact_times(dance.contacts(BLUETOOTH_RANGE)),
            rounds=3,
            iterations=1,
        )
        series = {n: a.inter_contact_times(BLUETOOTH_RANGE) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 1(b) ICT r=10m", series)
        for name, ecdf in series.items():
            # ICT spans from around the sampling period to >15 min.
            assert ecdf.min <= 60.0, name
            assert ecdf.quantile(0.95) > 900.0, name
        gaps = inter_contact_times(dance.contacts(BLUETOOTH_RANGE))
        _assert_power_law_with_cutoff(gaps, "Dance ICT r=10")


class TestFig1cFirstContactRb:
    def test_fig1c_first_contact_rb(self, benchmark, traces, analyzers, capsys):
        from repro.core.contacts import first_contact_times

        apfel = traces["Apfel Land"]
        benchmark.pedantic(
            lambda: first_contact_times(apfel, BLUETOOTH_RANGE), rounds=2, iterations=1
        )
        series = {n: a.first_contact_times(BLUETOOTH_RANGE) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 1(c) FT r=10m", series, log_grid(10.0, 3600.0, 6))
        # Apfel users wait much longer for their first neighbour.
        assert series["Apfel Land"].median > 4 * series["Dance Island"].median
        assert series["Apfel Land"].median > 4 * series["Isle of View"].median
        assert series["Dance Island"].median <= 20.0
        assert series["Isle of View"].median <= 20.0


class TestFig1dContactTimeRw:
    def test_fig1d_contact_time_rw(self, benchmark, traces, analyzers, capsys):
        dance = traces["Dance Island"]
        benchmark.pedantic(
            lambda: extract_contacts(dance, WIFI_RANGE), rounds=2, iterations=1
        )
        series = {n: a.contact_times(WIFI_RANGE) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 1(d) CT r=80m", series)
        # Larger range -> longer contacts, land by land.
        for name, analyzer in analyzers.items():
            assert (
                analyzer.contact_times(WIFI_RANGE).median
                >= analyzer.contact_times(BLUETOOTH_RANGE).median
            ), name


class TestFig1eInterContactRw:
    def test_fig1e_intercontact_rw(self, benchmark, analyzers, capsys):
        dance = analyzers["Dance Island"]
        benchmark.pedantic(
            lambda: inter_contact_times(dance.contacts(WIFI_RANGE)),
            rounds=3,
            iterations=1,
        )
        series = {n: a.inter_contact_times(WIFI_RANGE) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 1(e) ICT r=80m", series)
        # The paper's surprise: ICT stays in the same regime across
        # ranges (POI concentration).  Same order of magnitude here.
        for name, analyzer in analyzers.items():
            ict_b = analyzer.inter_contact_times(BLUETOOTH_RANGE).median
            ict_w = analyzer.inter_contact_times(WIFI_RANGE).median
            assert ict_w == pytest.approx(ict_b, rel=4.0), name


class TestFig1fFirstContactRw:
    def test_fig1f_first_contact_rw(self, benchmark, traces, analyzers, capsys):
        from repro.core.contacts import first_contact_times

        apfel = traces["Apfel Land"]
        benchmark.pedantic(
            lambda: first_contact_times(apfel, WIFI_RANGE), rounds=2, iterations=1
        )
        series = {n: a.first_contact_times(WIFI_RANGE) for n, a in analyzers.items()}
        _print_panel(capsys, "Fig 1(f) FT r=80m", series, log_grid(10.0, 3600.0, 6))
        # 'The FT improves a lot when increasing r.'
        for name, analyzer in analyzers.items():
            assert (
                analyzer.first_contact_times(WIFI_RANGE).median
                <= analyzer.first_contact_times(BLUETOOTH_RANGE).median
            ), name
        assert series["Dance Island"].median <= 5.0
        assert series["Isle of View"].median <= 5.0
