"""Batched multi-range contact sweeps vs sequential per-radius extraction.

:func:`repro.core.extract_contacts_multirange` builds the pair-event
table once per trace at the largest radius (grid queries with
distances kept) and runs the run-length kernel per radius under a
distance mask, where sequential :func:`extract_contacts` calls
rebuild the grid and the event table once per radius.

The headline workload is the paper's own regime: avatars clustered at
hot-spots, mostly idle (§3's long contact times).  Persistent pairs
are where batching shines — almost every r_max event survives every
mask, so the once-built table amortizes across all five radii.  A
mobile regime is reported alongside for contrast: when the population
churns, per-radius kernel work dominates both paths and the speedup
narrows.

Runs two ways:

* ``pytest benchmarks/bench_multirange.py -s`` — assertion harness;
* ``PYTHONPATH=src python benchmarks/bench_multirange.py`` — the table
  recorded in CHANGES.md.

Acceptance bar: >= 1.1x over 5 sequential calls on the hot-spot
workload (measured ~1.3x on the dev container since the kernel
rewrite made the sequential baseline ~4x faster).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import extract_contacts, extract_contacts_multirange
from repro.trace import random_walk_trace

#: The 5-radius sweep of the acceptance bar (Bluetooth to WiFi class).
RADII = (5.0, 10.0, 20.0, 40.0, 80.0)

#: Speedup floor on the hot-spot workload.  The run-length kernels
#: rebuilt *both* paths on the shared event table: sequential calls
#: now re-run the grid + kernel per radius while the batched sweep
#: builds the event table once at r_max and masks per radius.  The
#: sequential baseline got ~4x faster, so the ratio narrowed from
#: ~2.5x to ~1.3x; the floor defends "one build beats five" rather
#: than the old state-machine headline.
MULTIRANGE_SPEEDUP_FLOOR = 1.1

#: (label, random_walk_trace kwargs) per regime.
WORKLOADS = (
    ("hotspot-idle", dict(n_users=500, steps=180, step_std=0.5, size=256.0)),
    ("mobile-churn", dict(n_users=400, steps=120, step_std=5.0, size=256.0)),
)


def _measure(kwargs: dict) -> dict[str, float]:
    trace = random_walk_trace(rng=np.random.default_rng(2008), **kwargs)
    extract_contacts(trace, RADII[0])  # warm caches / allocator
    t0 = time.perf_counter()
    sequential = {r: extract_contacts(trace, r) for r in RADII}
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = extract_contacts_multirange(trace, RADII)
    t_multi = time.perf_counter() - t0
    for r in RADII:
        assert batched[r] == sequential[r], f"extractors disagree at r={r}"
    return {
        "contacts": len(batched[RADII[-1]]),
        "sequential_s": t_seq,
        "multirange_s": t_multi,
        "speedup": t_seq / t_multi,
    }


def test_multirange_beats_sequential_sweep():
    # Best of two rounds: one scheduler hiccup in either path must not
    # fail a perf assertion.
    speedup = max(_measure(dict(WORKLOADS[0][1]))["speedup"] for _ in range(2))
    assert speedup >= MULTIRANGE_SPEEDUP_FLOOR, (
        f"multirange only {speedup:.2f}x over sequential "
        f"(bar: {MULTIRANGE_SPEEDUP_FLOOR:.1f}x)"
    )


def test_multirange_equivalence_at_bench_scale():
    trace = random_walk_trace(120, 60, np.random.default_rng(5))
    batched = extract_contacts_multirange(trace, RADII)
    for r in RADII:
        assert batched[r] == extract_contacts(trace, r)


def main() -> None:
    print(f"multi-range contact sweep, {len(RADII)} radii {RADII}")
    print(f"{'workload':>14} {'contacts':>9} {'sequential':>11} {'multirange':>11} {'speedup':>8}")
    for label, kwargs in WORKLOADS:
        row = _measure(dict(kwargs))
        print(
            f"{label:>14} {row['contacts']:>9} {row['sequential_s']:>10.2f}s "
            f"{row['multirange_s']:>10.2f}s {row['speedup']:>7.2f}x"
        )


if __name__ == "__main__":
    main()
