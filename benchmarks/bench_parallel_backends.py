"""Shard backends head to head: serial vs thread vs process contacts.

Times the contact-interval extraction of a 1M-observation random-walk
trace three ways: unsharded (:func:`repro.core.extract_contacts`),
sharded on the thread backend, and sharded on the process backend
(spawned workers memmap-loading per-shard ``.rtrc`` files).  The
run-length extraction kernels are numpy-bound and release the GIL,
so both parallel backends genuinely overlap shard work; the floor
defends that sharding still beats the (kernel-fast) serial path at
all.

Runs two ways:

* ``pytest benchmarks/bench_parallel_backends.py -s`` for the
  assertion harness (correctness smoke at reduced scale — perf floors
  live in the CI benchmark step, where the workload is big enough to
  amortize worker spawn);
* ``PYTHONPATH=src python benchmarks/bench_parallel_backends.py`` for
  the full 1M-observation table.  With >= 2 usable cores the run
  **fails** (exit 1) unless the process backend beats the unsharded
  serial extraction by :data:`PROCESS_OVER_SERIAL_FLOOR`; on a single
  core the floor is reported as skipped — there is no parallelism to
  measure.

CI publishes the table as an artifact, so the regression floor comes
with the numbers that justified it.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.core import ShardedAnalyzer, extract_contacts
from repro.trace import Trace
from repro.trace.columnar import ColumnarStore, UserInterner

#: Full-run workload: 500 snapshots x 2000 users = 1M observations.
FULL_SNAPSHOTS, FULL_USERS = 500, 2000

#: Contact range (metres) — ~10 in-range neighbours per user.
RADIUS = 10.0

#: Shard count for both sharded backends.
SHARDS = 4

#: CI regression floor: process-backend speedup over the *unsharded
#: serial* extraction on the full contacts workload, enforced when
#: >= 2 cores are usable.  Dropping under it means the process path
#: stopped parallelizing (or started shipping trace bytes through the
#: pipe again).  The run-length kernels made the serial baseline ~4x
#: faster than the old loop extractors, so the floor is a deliberate
#: "parallelism still pays for its spawn overhead" bound, not a
#: headline multi-core ratio.
PROCESS_OVER_SERIAL_FLOOR = 1.2


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def walk_trace(
    snapshots: int, users: int, region: float = 256.0, step: float = 4.0
) -> Trace:
    """A random-walk trace with steady contact churn.

    Everyone takes a Gaussian step per snapshot, so pairs drift in and
    out of range and the interval state machine does real work —
    unlike static positions, where every contact is one censored span.
    """
    rng = np.random.default_rng(snapshots * 31 + users)
    times = np.arange(snapshots, dtype=np.float64) * 10.0
    offsets = np.arange(snapshots + 1, dtype=np.int64) * users
    ids = np.tile(np.arange(users, dtype=np.int64), snapshots)
    pos = rng.uniform(0.0, region, size=(users, 3))
    pos[:, 2] = 0.0
    frames = np.empty((snapshots, users, 3))
    for s in range(snapshots):
        frames[s] = pos
        pos[:, :2] = np.clip(
            pos[:, :2] + rng.normal(0.0, step, size=(users, 2)), 0.0, region
        )
    store = ColumnarStore(
        times,
        offsets,
        ids,
        frames.reshape(-1, 3),
        UserInterner(f"u{i:05d}" for i in range(users)),
    )
    return Trace.from_columns(store)


def metaverse_load(snapshots: int, users: int) -> Trace:
    """The standard load-generator trace: Zipf hotspots, venue hops.

    Wraps :func:`repro.trace.metaverse_trace` with a seed derived from
    the workload shape, mirroring :func:`walk_trace`.  Hotspot
    crowding gives the service and distributed benchmarks a
    contact-dense, realistically skewed workload instead of a uniform
    diffuse one; scale the arguments up for million-avatar runs.
    """
    from repro.trace import metaverse_trace

    rng = np.random.default_rng(snapshots * 31 + users)
    return metaverse_trace(users, snapshots, rng, size=1024.0, n_hotspots=48)


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def measure(trace: Trace) -> dict[str, float]:
    """Wall time of the contacts workload per backend, plus checks."""
    t_serial, serial = _timed(lambda: extract_contacts(trace, RADIUS))
    results = {"serial_s": t_serial, "contacts": len(serial)}
    for backend in ("thread", "process"):
        with ShardedAnalyzer(trace, SHARDS, backend=backend) as sharded:
            t, merged = _timed(lambda: sharded.contacts(RADIUS))
        assert merged == serial, f"{backend} backend diverged from serial"
        results[f"{backend}_s"] = t
    results["process_over_thread"] = results["thread_s"] / results["process_s"]
    results["process_over_serial"] = t_serial / results["process_s"]
    return results


# -- pytest harness (correctness smoke at reduced scale) -------------------


def test_backends_agree_on_contacts():
    row = measure(walk_trace(40, 150))  # 6k observations
    assert row["contacts"] > 0, "degenerate workload: no contacts"


def test_shard_files_round_trip_through_process_pool():
    trace = walk_trace(24, 80)
    with ShardedAnalyzer(trace, 3, backend="process") as sharded:
        merged = sharded.contacts(RADIUS)
        # Second analysis reuses the pool and shard files.
        occupancy = sharded.zone_occupation(20.0, every=2)
    assert merged == extract_contacts(trace, RADIUS)
    assert occupancy.sum() == sum(
        len(trace.columns.slice_snapshots(i, i + 1).user_ids)
        for i in range(0, len(trace), 2)
    )


# -- full table ------------------------------------------------------------


def main() -> int:
    cores = usable_cores()
    obs = FULL_SNAPSHOTS * FULL_USERS
    print(
        f"parallel shard backends: contacts workload, {obs} observations, "
        f"r={RADIUS:g} m, k={SHARDS} shards, {cores} usable core(s)"
    )
    trace = walk_trace(FULL_SNAPSHOTS, FULL_USERS)
    row = measure(trace)
    print(f"{'backend':>10} {'wall':>9} {'vs serial':>10}")
    print(f"{'serial':>10} {row['serial_s']:>8.2f}s {'1.00x':>10}")
    print(
        f"{'thread':>10} {row['thread_s']:>8.2f}s "
        f"{row['serial_s'] / row['thread_s']:>9.2f}x"
    )
    print(
        f"{'process':>10} {row['process_s']:>8.2f}s "
        f"{row['process_over_serial']:>9.2f}x"
    )
    print(
        f"{row['contacts']} contact intervals; process over serial: "
        f"{row['process_over_serial']:.2f}x (floor {PROCESS_OVER_SERIAL_FLOOR}x)"
    )
    if cores < 2:
        print("floor skipped: single usable core, nothing to parallelize")
        return 0
    if row["process_over_serial"] < PROCESS_OVER_SERIAL_FLOOR:
        print(
            f"REGRESSION: process backend only {row['process_over_serial']:.2f}x "
            f"the unsharded serial extraction (floor {PROCESS_OVER_SERIAL_FLOOR}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
