"""Extension — the §5 'relation graph' future work, as an experiment.

Builds the acquaintance network from each land's contact history and
reports the frequency/strength questions the paper poses.  Social
structure should mirror the lands: the event land breeds the most
acquaintances; strength and frequency correlate strongly everywhere
(dwelling together is what makes repeated contacts long).
"""

from repro.core import BLUETOOTH_RANGE
from repro.core.report import render_summary_table
from repro.social import (
    acquaintance_summary,
    build_relation_graph,
    strength_frequency_correlation,
)


def test_relation_graph_across_lands(benchmark, analyzers, capsys):
    dance_contacts = analyzers["Dance Island"].contacts(BLUETOOTH_RANGE)
    benchmark.pedantic(
        lambda: build_relation_graph(dance_contacts, min_encounters=2),
        rounds=3,
        iterations=1,
    )
    rows = []
    for land, analyzer in analyzers.items():
        contacts = analyzer.contacts(BLUETOOTH_RANGE)
        everyone = build_relation_graph(contacts, min_encounters=1)
        repeats = build_relation_graph(contacts, min_encounters=2)
        summary = acquaintance_summary(everyone)
        rows.append(
            {
                "land": land,
                "pairs_met": len(everyone),
                "pairs_re_met": len(repeats),
                "re_meet_share": round(len(repeats) / len(everyone), 3),
                "median_strength_s": round(summary["strength_s"].median, 1),
                "corr_freq_strength": round(
                    strength_frequency_correlation(everyone), 3
                ),
            }
        )
    with capsys.disabled():
        print("\n[EXT] Relation graph (r=10m): frequency & strength of acquaintances")
        print(render_summary_table(rows))

    by_land = {row["land"]: row for row in rows}
    # Frequency and strength correlate positively on every land, and
    # most strongly on the event land where users orbit the venue.
    for land, row in by_land.items():
        assert row["corr_freq_strength"] > 0.0, land
    assert (
        by_land["Isle of View"]["corr_freq_strength"]
        >= by_land["Apfel Land"]["corr_freq_strength"]
    )
    # Long event sessions around shared POIs breed repeat encounters;
    # the club's fast crowd turnover makes most of its pairs one-offs.
    assert by_land["Isle of View"]["re_meet_share"] > by_land["Dance Island"]["re_meet_share"]
    # Tie strength mirrors the lands' contact-time ordering.
    assert (
        by_land["Apfel Land"]["median_strength_s"]
        < by_land["Isle of View"]["median_strength_s"]
    )
