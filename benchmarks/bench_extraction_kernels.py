"""Run-length extraction kernels vs the per-snapshot loop extractors.

Times the three serial extraction workloads of a 1M-observation
random-walk trace both ways — the vectorized run-length kernels
(:func:`repro.core.extract_contact_set`,
:func:`repro.trace.extract_session_set`,
:func:`repro.core.extract_contact_sets_multirange`) against the
original Python state machines, kept as
:func:`repro.core.extract_contacts_loop`,
:func:`repro.trace.extract_sessions_loop` and
:func:`repro.core.extract_contacts_multirange_loop`.  Every kernel
result is asserted bit-for-bit equal to its loop oracle before any
ratio is reported.

Runs two ways:

* ``pytest benchmarks/bench_extraction_kernels.py -s`` for the
  assertion harness (correctness smoke at reduced scale);
* ``PYTHONPATH=src python benchmarks/bench_extraction_kernels.py``
  for the full 1M-observation table.  The run **fails** (exit 1)
  unless the kernels beat the loops by :data:`KERNEL_OVER_LOOP_FLOOR`
  on the combined contacts+sessions workload.

The CI benchmark-trend tier (``benchmarks/trend.py``) runs the same
measurement at reduced scale and gates the ratios against
``benchmarks/baselines.json``.
"""

from __future__ import annotations

import sys
import time

from bench_parallel_backends import walk_trace

from repro.core import (
    extract_contact_set,
    extract_contact_sets_multirange,
    extract_contacts_loop,
    extract_contacts_multirange_loop,
)
from repro.trace import Trace, extract_session_set, extract_sessions_loop

#: Full-run workload: 500 snapshots x 2000 users = 1M observations.
FULL_SNAPSHOTS, FULL_USERS = 500, 2000

#: Contact range (metres) for the single-radius workload.
RADIUS = 10.0

#: The multirange sweep — five radii sharing one event-table build.
#: Capped at r=20 m: on this 2000-user walk the in-range pair count
#: grows with r^2, and r=80 would mean ~300M pair events — a memory
#: benchmark, not an extraction one.
SWEEP = (2.5, 5.0, 7.5, 10.0, 20.0)

#: Full-run floor: the kernels must beat the loop extractors by this
#: factor on the combined serial contacts+sessions workload.
KERNEL_OVER_LOOP_FLOOR = 3.0


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def measure(trace: Trace, sweep: tuple[float, ...] = SWEEP) -> dict[str, float]:
    """Kernel vs loop wall times; asserts bit-for-bit equivalence."""
    t_loop_c, loop_contacts = _timed(lambda: extract_contacts_loop(trace, RADIUS))
    t_kern_c, kernel_contacts = _timed(lambda: extract_contact_set(trace, RADIUS))
    assert kernel_contacts == loop_contacts, "contact kernel diverged from loop"

    t_loop_s, loop_sessions = _timed(lambda: extract_sessions_loop(trace))
    t_kern_s, kernel_sessions = _timed(lambda: extract_session_set(trace))
    assert kernel_sessions == loop_sessions, "session kernel diverged from loop"

    t_loop_m, loop_sweep = _timed(
        lambda: extract_contacts_multirange_loop(trace, sweep)
    )
    t_kern_m, kernel_sweep = _timed(
        lambda: extract_contact_sets_multirange(trace, sweep)
    )
    for r in sweep:
        assert kernel_sweep[r] == loop_sweep[r], f"sweep diverged at r={r:g}"

    return {
        "loop_contacts_s": t_loop_c,
        "kernel_contacts_s": t_kern_c,
        "loop_sessions_s": t_loop_s,
        "kernel_sessions_s": t_kern_s,
        "loop_sweep_s": t_loop_m,
        "kernel_sweep_s": t_kern_m,
        "contacts": len(kernel_contacts),
        "sessions": len(kernel_sessions),
        "contacts_kernel_over_loop": t_loop_c / t_kern_c,
        "sessions_kernel_over_loop": t_loop_s / t_kern_s,
        "sweep_kernel_over_loop": t_loop_m / t_kern_m,
        "kernel_over_loop": (t_loop_c + t_loop_s) / (t_kern_c + t_kern_s),
    }


# -- pytest harness (correctness smoke at reduced scale) -------------------


def test_kernels_match_loops_on_walk_trace():
    row = measure(walk_trace(40, 150), sweep=(5.0, 10.0, 20.0))
    assert row["contacts"] > 0, "degenerate workload: no contacts"
    assert row["sessions"] > 0, "degenerate workload: no sessions"


# -- full table ------------------------------------------------------------


def main() -> int:
    obs = FULL_SNAPSHOTS * FULL_USERS
    print(
        f"extraction kernels: {obs} observations, r={RADIUS:g} m, "
        f"sweep={len(SWEEP)} radii"
    )
    trace = walk_trace(FULL_SNAPSHOTS, FULL_USERS)
    row = measure(trace)
    print(f"{'workload':>22} {'loop':>9} {'kernel':>9} {'speedup':>9}")
    for label, loop_key, kern_key, ratio_key in (
        ("contacts", "loop_contacts_s", "kernel_contacts_s",
         "contacts_kernel_over_loop"),
        ("sessions", "loop_sessions_s", "kernel_sessions_s",
         "sessions_kernel_over_loop"),
        (f"{len(SWEEP)}-radius sweep", "loop_sweep_s", "kernel_sweep_s",
         "sweep_kernel_over_loop"),
    ):
        print(
            f"{label:>22} {row[loop_key]:>8.2f}s {row[kern_key]:>8.2f}s "
            f"{row[ratio_key]:>8.2f}x"
        )
    print(
        f"{row['contacts']} contact intervals, {row['sessions']} sessions; "
        f"combined contacts+sessions: {row['kernel_over_loop']:.2f}x "
        f"(floor {KERNEL_OVER_LOOP_FLOOR:.1f}x)"
    )
    if row["kernel_over_loop"] < KERNEL_OVER_LOOP_FLOOR:
        print(
            f"FAIL: kernels only {row['kernel_over_loop']:.2f}x over loops, "
            f"floor is {KERNEL_OVER_LOOP_FLOOR:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
